// Package ntree implements a metric-space trajectory index in the spirit
// of the N-tree (Güting et al.) and the M-tree family: whole trajectories
// are organized by distance to pivot trajectories, with per-subtree
// covering radii enabling triangle-inequality pruning for exact kNN.
//
// The base distance is DISSIM over the two trajectories' common time
// span (+Inf when the spans are disjoint). This choice makes query-time
// pruning sound for window-restricted DISSIM queries: the integrand is
// non-negative, so for any query window W contained in both trajectories'
// spans, DISSIM over W is at most the base distance — a stored radius R
// covering base distances also covers every window-restricted distance,
// and the triangle bound d_W(q, pivot) − R lower-bounds d_W(q, x) for
// every member x (the triangle inequality holds for DISSIM over a fixed
// window, since it is induced by the L2 point metric integrated over W).
//
// Crucially, the base distance is NOT a metric across differing common
// spans, so the tree never derives one stored distance from another via
// the triangle inequality: every stored DistToPivot and covering Radius
// is computed exactly against the actual members. Insertion updates the
// aggregates along the descent path with directly computed distances, and
// node splits recompute the affected radii by enumerating the subtree's
// members — O(subtree) per split, the price of exactness.
//
// Like the TB-tree and STR-tree, a reopened tree is read-only; the DB
// layer rebuilds the index to mutate a loaded store. Nodes share the page
// store and CRC discipline of the MBB trees via the metric node codec in
// internal/index (flag bit1).
package ntree

import (
	"errors"
	"fmt"
	"math"

	"mstsearch/internal/dissim"
	"mstsearch/internal/geom"
	"mstsearch/internal/index"
	"mstsearch/internal/storage"
	"mstsearch/internal/trajectory"
)

// Meta is the persistent root information needed to reopen a tree over a
// different pager.
type Meta struct {
	Root   storage.PageID
	Height int
	Nodes  int
}

// Lookup resolves a trajectory ID to its stored geometry. The tree holds
// no geometry of its own — distances are computed against the caller's
// trajectory store, which must outlive the tree and must not mutate
// indexed trajectories (the DB layer rebuilds on append for this reason).
type Lookup func(trajectory.ID) *trajectory.Trajectory

// ErrReadOnly is returned when inserting into a reopened tree.
var ErrReadOnly = errors.New("ntree: tree opened read-only")

// Tree is an N-tree bound to a pager and a trajectory store.
type Tree struct {
	pager    storage.Pager
	lookup   Lookup
	root     storage.PageID
	height   int
	nodes    int
	maxLeaf  int
	maxChild int
	readOnly bool
}

// New creates an empty N-tree on the pager.
func New(pager storage.Pager, lookup Lookup) *Tree {
	return &Tree{
		pager:    pager,
		lookup:   lookup,
		root:     storage.NilPage,
		maxLeaf:  index.MaxMetricLeafEntries(pager.PageSize()),
		maxChild: index.MaxMetricChildEntries(pager.PageSize()),
	}
}

// Open reattaches a built tree to a pager for reading.
func Open(pager storage.Pager, m Meta, lookup Lookup) *Tree {
	t := New(pager, lookup)
	t.root, t.height, t.nodes = m.Root, m.Height, m.Nodes
	t.readOnly = true
	return t
}

// Meta returns the tree's reopen information.
func (t *Tree) Meta() Meta { return Meta{Root: t.root, Height: t.height, Nodes: t.nodes} }

// ReadOnly reports whether the tree was reopened from a snapshot and
// therefore rejects inserts.
func (t *Tree) ReadOnly() bool { return t.readOnly }

// Lookup returns the trajectory resolver the tree was bound to, so a
// caller can reopen a view of the tree against the same store.
func (t *Tree) Lookup() Lookup { return t.lookup }

// Root implements index.Index.
func (t *Tree) Root() storage.PageID { return t.root }

// Height implements index.Index.
func (t *Tree) Height() int { return t.height }

// NumNodes implements index.Index.
func (t *Tree) NumNodes() int { return t.nodes }

// ReadMetricNode implements index.MetricTree.
func (t *Tree) ReadMetricNode(id storage.PageID) (*index.MetricNode, error) {
	return index.ReadMetricNode(t.pager, id)
}

// RootMBB implements index.MetricTree.
func (t *Tree) RootMBB() geom.MBB {
	if t.root == storage.NilPage {
		return geom.EmptyMBB()
	}
	n, err := t.ReadMetricNode(t.root)
	if err != nil {
		return geom.EmptyMBB()
	}
	return n.MBB()
}

var _ index.MetricTree = (*Tree)(nil)

// BaseDist is the tree's base distance: exact DISSIM over the common time
// span of a and b, +Inf when the spans are disjoint or degenerate. It is
// the distance every stored DistToPivot and Radius refers to.
func BaseDist(a, b *trajectory.Trajectory) float64 {
	lo := math.Max(a.StartTime(), b.StartTime())
	hi := math.Min(a.EndTime(), b.EndTime())
	if !(lo < hi) {
		return math.Inf(1)
	}
	d, ok := dissim.Exact(a, b, lo, hi)
	if !ok {
		return math.Inf(1)
	}
	return d
}

func (t *Tree) get(id trajectory.ID) (*trajectory.Trajectory, error) {
	if t.lookup == nil {
		return nil, errors.New("ntree: no trajectory lookup bound")
	}
	tr := t.lookup(id)
	if tr == nil {
		return nil, fmt.Errorf("ntree: unknown trajectory %d", id)
	}
	return tr, nil
}

func (t *Tree) allocNode(leaf bool) (*index.MetricNode, error) {
	id, err := t.pager.Alloc()
	if err != nil {
		return nil, err
	}
	t.nodes++
	return &index.MetricNode{Page: id, Leaf: leaf}, nil
}

func (t *Tree) writeNode(n *index.MetricNode) error {
	return index.WriteMetricNode(t.pager, n)
}

// step is one level of the descent path: the internal node read and the
// child entry index the descent followed.
type step struct {
	node  *index.MetricNode
	child int
}

// InsertTrajectory indexes one whole trajectory. Trajectories must be
// inserted exactly once; the tree records the ID, sample count, MBB and
// pivot distance, never the geometry itself.
func (t *Tree) InsertTrajectory(tr *trajectory.Trajectory) error {
	if t.readOnly {
		return ErrReadOnly
	}
	if len(tr.Samples) < 2 {
		return fmt.Errorf("ntree: trajectory %d has %d samples, need >= 2", tr.ID, len(tr.Samples))
	}
	if t.root == storage.NilPage {
		leaf, err := t.allocNode(true)
		if err != nil {
			return err
		}
		leaf.PivotID = tr.ID
		leaf.Leaves = []index.MetricLeafEntry{{
			TrajID:      tr.ID,
			Samples:     uint32(len(tr.Samples)),
			DistToPivot: BaseDist(tr, tr),
			MBB:         tr.Bounds(),
		}}
		if err := t.writeNode(leaf); err != nil {
			return err
		}
		t.root = leaf.Page
		t.height = 1
		return nil
	}

	// Descend to the leaf whose pivot is nearest, recording the path.
	// Ties break to the first entry, keeping builds deterministic.
	var path []step
	page := t.root
	for {
		n, err := t.ReadMetricNode(page)
		if err != nil {
			return err
		}
		if n.Leaf {
			return t.insertAtLeaf(path, n, tr)
		}
		best, bestD := -1, math.Inf(1)
		for i, c := range n.Children {
			p, err := t.get(c.PivotID)
			if err != nil {
				return err
			}
			if d := BaseDist(p, tr); best == -1 || d < bestD {
				best, bestD = i, d
			}
		}
		path = append(path, step{n, best})
		page = n.Children[best].Page
	}
}

func (t *Tree) insertAtLeaf(path []step, leaf *index.MetricNode, tr *trajectory.Trajectory) error {
	piv, err := t.get(leaf.PivotID)
	if err != nil {
		return err
	}
	e := index.MetricLeafEntry{
		TrajID:      tr.ID,
		Samples:     uint32(len(tr.Samples)),
		DistToPivot: BaseDist(piv, tr),
		MBB:         tr.Bounds(),
	}
	if len(leaf.Leaves) < t.maxLeaf {
		leaf.Leaves = append(leaf.Leaves, e)
		if err := t.writeNode(leaf); err != nil {
			return err
		}
		return t.updatePath(path, tr)
	}
	n1, n2, err := t.splitLeaf(leaf, e)
	if err != nil {
		return err
	}
	e1 := leafRoutingEntry(n1)
	e2 := leafRoutingEntry(n2)
	return t.addChild(path, e1, e2, tr)
}

// splitLeaf partitions the full leaf plus the overflowing entry into two
// leaves: the old page keeps the old pivot p1; a new page is pivoted on
// p2, the member farthest from p1 (tie → first). Members go to the nearer
// pivot (tie → p1); every DistToPivot is computed directly, never via the
// triangle inequality.
func (t *Tree) splitLeaf(leaf *index.MetricNode, extra index.MetricLeafEntry) (n1, n2 *index.MetricNode, err error) {
	all := make([]index.MetricLeafEntry, 0, len(leaf.Leaves)+1)
	all = append(all, leaf.Leaves...)
	all = append(all, extra)
	p1 := leaf.PivotID
	p2idx := -1
	for i, e := range all {
		if e.TrajID == p1 {
			continue
		}
		if p2idx == -1 || e.DistToPivot > all[p2idx].DistToPivot {
			p2idx = i
		}
	}
	if p2idx == -1 {
		return nil, nil, fmt.Errorf("ntree: leaf %d has no split pivot candidate", leaf.Page)
	}
	p2 := all[p2idx].TrajID
	p2tr, err := t.get(p2)
	if err != nil {
		return nil, nil, err
	}
	var g1, g2 []index.MetricLeafEntry
	for _, e := range all {
		switch e.TrajID {
		case p1:
			g1 = append(g1, e)
			continue
		case p2:
			e.DistToPivot = BaseDist(p2tr, p2tr)
			g2 = append(g2, e)
			continue
		}
		x, err := t.get(e.TrajID)
		if err != nil {
			return nil, nil, err
		}
		d2 := BaseDist(p2tr, x)
		if d2 < e.DistToPivot {
			e.DistToPivot = d2
			g2 = append(g2, e)
		} else {
			g1 = append(g1, e)
		}
	}
	n1 = leaf
	n1.Leaves = g1
	n2, err = t.allocNode(true)
	if err != nil {
		return nil, nil, err
	}
	n2.PivotID = p2
	n2.Leaves = g2
	if err := t.writeNode(n1); err != nil {
		return nil, nil, err
	}
	if err := t.writeNode(n2); err != nil {
		return nil, nil, err
	}
	return n1, n2, nil
}

// leafRoutingEntry computes the exact routing entry for a leaf: the
// radius is the max stored pivot distance, the aggregates fold over the
// members.
func leafRoutingEntry(n *index.MetricNode) index.MetricChildEntry {
	c := index.MetricChildEntry{Page: n.Page, PivotID: n.PivotID, MBB: geom.EmptyMBB()}
	for i, e := range n.Leaves {
		if e.DistToPivot > c.Radius {
			c.Radius = e.DistToPivot
		}
		c.MBB = c.MBB.Expand(e.MBB)
		if i == 0 || e.Samples < c.MinSamples {
			c.MinSamples = e.Samples
		}
		if e.Samples > c.MaxSamples {
			c.MaxSamples = e.Samples
		}
	}
	return c
}

// addChild replaces the routing entry of a just-split node with its exact
// recomputation and inserts the new sibling's entry, splitting upward as
// needed. tr is the trajectory whose insertion triggered the split; the
// untouched ancestors above the split point still need their aggregates
// widened for it.
func (t *Tree) addChild(path []step, replace, add index.MetricChildEntry, tr *trajectory.Trajectory) error {
	if len(path) == 0 {
		root, err := t.allocNode(false)
		if err != nil {
			return err
		}
		root.PivotID = replace.PivotID
		root.Children = []index.MetricChildEntry{replace, add}
		if err := t.writeNode(root); err != nil {
			return err
		}
		t.root = root.Page
		t.height++
		return nil
	}
	last := path[len(path)-1]
	parent := last.node
	parent.Children[last.child] = replace
	if len(parent.Children) < t.maxChild {
		parent.Children = append(parent.Children, add)
		if err := t.writeNode(parent); err != nil {
			return err
		}
		return t.updatePath(path[:len(path)-1], tr)
	}
	e1, e2, err := t.splitInternal(parent, add)
	if err != nil {
		return err
	}
	return t.addChild(path[:len(path)-1], e1, e2, tr)
}

// splitInternal partitions a full internal node plus one extra entry into
// two nodes, pivoted on the node's pivot p1 and the child pivot farthest
// from it. The two routing radii are recomputed exactly by enumerating
// the members of each half — the base distance is interval-dependent, so
// no triangle shortcut is sound here.
func (t *Tree) splitInternal(node *index.MetricNode, extra index.MetricChildEntry) (e1, e2 index.MetricChildEntry, err error) {
	all := make([]index.MetricChildEntry, 0, len(node.Children)+1)
	all = append(all, node.Children...)
	all = append(all, extra)
	p1 := node.PivotID
	p1tr, err := t.get(p1)
	if err != nil {
		return e1, e2, err
	}
	d1 := make([]float64, len(all))
	for i, c := range all {
		p, err := t.get(c.PivotID)
		if err != nil {
			return e1, e2, err
		}
		d1[i] = BaseDist(p1tr, p)
	}
	p2idx := -1
	for i, c := range all {
		if c.PivotID == p1 {
			continue
		}
		if p2idx == -1 || d1[i] > d1[p2idx] {
			p2idx = i
		}
	}
	if p2idx == -1 {
		return e1, e2, fmt.Errorf("ntree: internal %d has no split pivot candidate", node.Page)
	}
	p2 := all[p2idx].PivotID
	p2tr, err := t.get(p2)
	if err != nil {
		return e1, e2, err
	}
	var g1, g2 []index.MetricChildEntry
	for i, c := range all {
		switch c.PivotID {
		case p1:
			g1 = append(g1, c)
			continue
		case p2:
			g2 = append(g2, c)
			continue
		}
		p, err := t.get(c.PivotID)
		if err != nil {
			return e1, e2, err
		}
		if BaseDist(p2tr, p) < d1[i] {
			g2 = append(g2, c)
		} else {
			g1 = append(g1, c)
		}
	}
	n1 := node
	n1.Children = g1
	n2, err := t.allocNode(false)
	if err != nil {
		return e1, e2, err
	}
	n2.PivotID = p2
	n2.Children = g2
	if err := t.writeNode(n1); err != nil {
		return e1, e2, err
	}
	if err := t.writeNode(n2); err != nil {
		return e1, e2, err
	}
	if e1, err = t.internalRoutingEntry(n1, p1tr); err != nil {
		return e1, e2, err
	}
	if e2, err = t.internalRoutingEntry(n2, p2tr); err != nil {
		return e1, e2, err
	}
	return e1, e2, nil
}

// internalRoutingEntry computes the exact routing entry for an internal
// node: aggregates fold over the child entries; the radius enumerates the
// subtree's members against the node's pivot.
func (t *Tree) internalRoutingEntry(n *index.MetricNode, pivot *trajectory.Trajectory) (index.MetricChildEntry, error) {
	c := index.MetricChildEntry{Page: n.Page, PivotID: n.PivotID, MBB: geom.EmptyMBB()}
	for i, ch := range n.Children {
		c.MBB = c.MBB.Expand(ch.MBB)
		if i == 0 || ch.MinSamples < c.MinSamples {
			c.MinSamples = ch.MinSamples
		}
		if ch.MaxSamples > c.MaxSamples {
			c.MaxSamples = ch.MaxSamples
		}
	}
	err := t.walkMembers(n.Page, func(id trajectory.ID) error {
		x, err := t.get(id)
		if err != nil {
			return err
		}
		if d := BaseDist(pivot, x); d > c.Radius {
			c.Radius = d
		}
		return nil
	})
	return c, err
}

// walkMembers visits every trajectory ID stored under page.
func (t *Tree) walkMembers(page storage.PageID, fn func(trajectory.ID) error) error {
	n, err := t.ReadMetricNode(page)
	if err != nil {
		return err
	}
	if n.Leaf {
		for _, e := range n.Leaves {
			if err := fn(e.TrajID); err != nil {
				return err
			}
		}
		return nil
	}
	for _, c := range n.Children {
		if err := t.walkMembers(c.Page, fn); err != nil {
			return err
		}
	}
	return nil
}

// updatePath widens the aggregates of the descent path's routing entries
// for the newly inserted trajectory: each ancestor's entry gets its
// radius maxed with the directly computed distance to that entry's pivot,
// its MBB expanded, and its sample bounds widened.
func (t *Tree) updatePath(path []step, tr *trajectory.Trajectory) error {
	mbb := tr.Bounds()
	samples := uint32(len(tr.Samples))
	for i := len(path) - 1; i >= 0; i-- {
		n, ci := path[i].node, path[i].child
		c := &n.Children[ci]
		p, err := t.get(c.PivotID)
		if err != nil {
			return err
		}
		if d := BaseDist(p, tr); d > c.Radius {
			c.Radius = d
		}
		c.MBB = c.MBB.Expand(mbb)
		if samples < c.MinSamples {
			c.MinSamples = samples
		}
		if samples > c.MaxSamples {
			c.MaxSamples = samples
		}
		if err := t.writeNode(n); err != nil {
			return err
		}
	}
	return nil
}

// CheckInvariants walks the whole tree and verifies the structural and
// metric invariants search soundness depends on: uniform leaf depth, the
// recorded node count, pivot membership (every node's pivot is stored in
// its own subtree), aggregate containment (entry MBB and sample bounds
// cover the members), exact leaf pivot distances, and covering radii
// (every member's directly recomputed base distance to the routing pivot
// is within the stored radius). It needs the trajectory lookup, so a tree
// opened without one cannot be checked.
func (t *Tree) CheckInvariants() error {
	if t.root == storage.NilPage {
		if t.height != 0 || t.nodes != 0 {
			return fmt.Errorf("ntree: empty tree with height %d, %d nodes", t.height, t.nodes)
		}
		return nil
	}
	seen := 0
	var walk func(page storage.PageID, depth int) (agg index.MetricChildEntry, members []trajectory.ID, err error)
	walk = func(page storage.PageID, depth int) (index.MetricChildEntry, []trajectory.ID, error) {
		var agg index.MetricChildEntry
		n, err := t.ReadMetricNode(page)
		if err != nil {
			return agg, nil, err
		}
		seen++
		if n.Leaf {
			if depth != t.height-1 {
				return agg, nil, fmt.Errorf("ntree: leaf %d at depth %d, want %d", page, depth, t.height-1)
			}
			piv, err := t.get(n.PivotID)
			if err != nil {
				return agg, nil, err
			}
			members := make([]trajectory.ID, 0, len(n.Leaves))
			agg = leafRoutingEntry(n)
			found := false
			for _, e := range n.Leaves {
				members = append(members, e.TrajID)
				found = found || e.TrajID == n.PivotID
				x, err := t.get(e.TrajID)
				if err != nil {
					return agg, nil, err
				}
				if d := BaseDist(piv, x); d != e.DistToPivot && !(math.IsInf(d, 1) && math.IsInf(e.DistToPivot, 1)) {
					return agg, nil, fmt.Errorf("ntree: leaf %d entry %d: stored pivot distance %v, recomputed %v",
						page, e.TrajID, e.DistToPivot, d)
				}
			}
			if !found {
				return agg, nil, fmt.Errorf("ntree: leaf %d pivot %d not among its members", page, n.PivotID)
			}
			return agg, members, nil
		}
		if len(n.Children) == 0 {
			return agg, nil, fmt.Errorf("ntree: internal %d is empty", page)
		}
		pivotAmongChildren := false
		var all []trajectory.ID
		agg = index.MetricChildEntry{Page: page, PivotID: n.PivotID, MBB: geom.EmptyMBB()}
		for i, c := range n.Children {
			pivotAmongChildren = pivotAmongChildren || c.PivotID == n.PivotID
			sub, members, err := walk(c.Page, depth+1)
			if err != nil {
				return agg, nil, err
			}
			if sub.PivotID != c.PivotID {
				return agg, nil, fmt.Errorf("ntree: node %d child %d: entry pivot %d, node header pivot %d",
					page, c.Page, c.PivotID, sub.PivotID)
			}
			if !c.MBB.Contains(sub.MBB) {
				return agg, nil, fmt.Errorf("ntree: node %d child %d: entry MBB does not contain subtree MBB", page, c.Page)
			}
			if sub.MinSamples < c.MinSamples || sub.MaxSamples > c.MaxSamples {
				return agg, nil, fmt.Errorf("ntree: node %d child %d: sample bounds [%d,%d] outside entry [%d,%d]",
					page, c.Page, sub.MinSamples, sub.MaxSamples, c.MinSamples, c.MaxSamples)
			}
			piv, err := t.get(c.PivotID)
			if err != nil {
				return agg, nil, err
			}
			for _, id := range members {
				x, err := t.get(id)
				if err != nil {
					return agg, nil, err
				}
				if d := BaseDist(piv, x); d > c.Radius {
					return agg, nil, fmt.Errorf("ntree: node %d child %d: member %d at distance %v outside radius %v",
						page, c.Page, id, d, c.Radius)
				}
			}
			agg.MBB = agg.MBB.Expand(c.MBB)
			if i == 0 || c.MinSamples < agg.MinSamples {
				agg.MinSamples = c.MinSamples
			}
			if c.MaxSamples > agg.MaxSamples {
				agg.MaxSamples = c.MaxSamples
			}
			all = append(all, members...)
		}
		if !pivotAmongChildren {
			return agg, nil, fmt.Errorf("ntree: internal %d pivot %d not among child pivots", page, n.PivotID)
		}
		return agg, all, nil
	}
	if _, _, err := walk(t.root, 0); err != nil {
		return err
	}
	if seen != t.nodes {
		return fmt.Errorf("ntree: walked %d nodes, metadata says %d", seen, t.nodes)
	}
	return nil
}
