package baselines

import (
	"math"

	"mstsearch/internal/geom"
	"mstsearch/internal/trajectory"
)

// OWD computes the One-Way Distance of Lin and Su [11] from a to b: the
// average, along a's curve (by arc length), of the distance from each
// point of a to the closest point of b's curve. It is a purely spatial
// (time-independent) shape measure, included as the related-work
// comparison the paper discusses in §2.
//
// The integral is evaluated numerically: every segment of a is sampled at
// samplesPerSeg ≥ 1 equidistant points (plus the final vertex), each
// weighted by the arc length it represents.
func OWD(a, b *trajectory.Trajectory, samplesPerSeg int) float64 {
	if samplesPerSeg < 1 {
		samplesPerSeg = 4
	}
	if len(a.Samples) == 0 || len(b.Samples) == 0 {
		return math.Inf(1)
	}
	if len(a.Samples) == 1 {
		return distToPolyline(a.Samples[0], b)
	}
	var weighted, length float64
	for i := 0; i+1 < len(a.Samples); i++ {
		p, q := a.Samples[i], a.Samples[i+1]
		segLen := math.Hypot(q.X-p.X, q.Y-p.Y)
		w := segLen / float64(samplesPerSeg)
		for s := 0; s < samplesPerSeg; s++ {
			f := (float64(s) + 0.5) / float64(samplesPerSeg)
			pt := trajectory.Sample{X: p.X + f*(q.X-p.X), Y: p.Y + f*(q.Y-p.Y)}
			weighted += distToPolyline(pt, b) * w
			length += w
		}
	}
	if length == 0 {
		// a is a stationary point sequence.
		return distToPolyline(a.Samples[0], b)
	}
	return weighted / length
}

// SymmetricOWD is the symmetric variant (the average of both directions),
// the form used for ranking.
func SymmetricOWD(a, b *trajectory.Trajectory, samplesPerSeg int) float64 {
	return (OWD(a, b, samplesPerSeg) + OWD(b, a, samplesPerSeg)) / 2
}

// distToPolyline returns the minimum distance from the point to b's
// spatial polyline.
func distToPolyline(p trajectory.Sample, b *trajectory.Trajectory) float64 {
	pt := geom.Point{X: p.X, Y: p.Y}
	if len(b.Samples) == 1 {
		return pt.Dist(geom.Point{X: b.Samples[0].X, Y: b.Samples[0].Y})
	}
	best := math.Inf(1)
	for i := 0; i+1 < len(b.Samples); i++ {
		d := geom.DistSegmentPoint(
			geom.Point{X: b.Samples[i].X, Y: b.Samples[i].Y},
			geom.Point{X: b.Samples[i+1].X, Y: b.Samples[i+1].Y},
			pt)
		if d < best {
			best = d
		}
	}
	return best
}
