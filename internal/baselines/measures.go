package baselines

import (
	"math"
	"sort"

	"mstsearch/internal/trajectory"
)

// LCSS computes the Longest Common SubSequence similarity of Vlachos et
// al. [21]: two samples match when both coordinate differences are below
// eps and their index offset is at most delta (delta < 0 disables the
// band). The returned similarity is LCSS/min(n, m) in [0, 1]; use
// 1 − similarity as a distance.
func LCSS(a, b *trajectory.Trajectory, eps float64, delta int) float64 {
	n, m := len(a.Samples), len(b.Samples)
	if n == 0 || m == 0 {
		return 0
	}
	// Rolling two-row DP over the (banded) edit lattice.
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			if delta >= 0 && abs(i-j) > delta {
				// Outside the band: carry the best neighbour so the band
				// borders stay consistent.
				cur[j] = max(prev[j], cur[j-1])
				continue
			}
			if matches(a.Samples[i-1], b.Samples[j-1], eps) {
				cur[j] = prev[j-1] + 1
			} else {
				cur[j] = max(prev[j], cur[j-1])
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	lcss := prev[m]
	return float64(lcss) / float64(minInt(n, m))
}

// LCSSDistance is 1 − LCSS similarity, a dissimilarity in [0, 1].
func LCSSDistance(a, b *trajectory.Trajectory, eps float64, delta int) float64 {
	return 1 - LCSS(a, b, eps, delta)
}

// EDR computes the Edit Distance on Real sequence of Chen et al. [5]:
// the number of insert/delete/replace operations needed to turn a into b,
// where a replace is free when the samples match within eps. Smaller is
// more similar.
func EDR(a, b *trajectory.Trajectory, eps float64) int {
	n, m := len(a.Samples), len(b.Samples)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			sub := 1
			if matches(a.Samples[i-1], b.Samples[j-1], eps) {
				sub = 0
			}
			cur[j] = minInt(prev[j-1]+sub, minInt(prev[j]+1, cur[j-1]+1))
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// DTW computes the Dynamic Time Warping distance [2] with Euclidean point
// cost and no band constraint. Smaller is more similar.
func DTW(a, b *trajectory.Trajectory) float64 {
	n, m := len(a.Samples), len(b.Samples)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	inf := math.Inf(1)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		cur[0] = inf
		for j := 1; j <= m; j++ {
			c := dist(a.Samples[i-1], b.Samples[j-1])
			cur[j] = c + math.Min(prev[j-1], math.Min(prev[j], cur[j-1]))
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// InterpolateToTimestamps implements the paper's "-I" improvement (§5.2):
// the under-sampled query gains linearly interpolated samples at every
// timestamp of the checked data trajectory (within the query's lifespan),
// so sample-by-sample measures see aligned sequences.
func InterpolateToTimestamps(q, data *trajectory.Trajectory) trajectory.Trajectory {
	times := make([]float64, 0, len(q.Samples)+len(data.Samples))
	for _, s := range q.Samples {
		times = append(times, s.T)
	}
	for _, s := range data.Samples {
		if s.T >= q.StartTime() && s.T <= q.EndTime() {
			times = append(times, s.T)
		}
	}
	sort.Float64s(times)
	// De-duplicate.
	uniq := times[:0]
	for i, t := range times {
		if i == 0 || t != uniq[len(uniq)-1] {
			uniq = append(uniq, t)
		}
	}
	return q.Resample(uniq)
}

// LCSSI is the LCSS-I improved measure: LCSS distance after aligning the
// query to the data trajectory's timestamps.
func LCSSI(q, data *trajectory.Trajectory, eps float64, delta int) float64 {
	qi := InterpolateToTimestamps(q, data)
	return LCSSDistance(&qi, data, eps, delta)
}

// EDRI is the EDR-I improved measure: EDR after aligning the query to the
// data trajectory's timestamps.
func EDRI(q, data *trajectory.Trajectory, eps float64) int {
	qi := InterpolateToTimestamps(q, data)
	return EDR(&qi, data, eps)
}

// EpsilonForDataset returns the matching threshold the paper uses for LCSS
// and EDR: a quarter of the maximum standard deviation over the (already
// normalized) trajectories (§5.2, after Chen et al.).
func EpsilonForDataset(trajs []trajectory.Trajectory) float64 {
	return trajectory.MaxStdOfDataset(trajs) / 4
}

func matches(a, b trajectory.Sample, eps float64) bool {
	return math.Abs(a.X-b.X) <= eps && math.Abs(a.Y-b.Y) <= eps
}

func dist(a, b trajectory.Sample) float64 { return math.Hypot(a.X-b.X, a.Y-b.Y) }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
