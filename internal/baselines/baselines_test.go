package baselines

import (
	"math"
	"math/rand"
	"testing"

	"mstsearch/internal/dissim"
	"mstsearch/internal/trajectory"
)

func traj(id trajectory.ID, pts ...[3]float64) trajectory.Trajectory {
	tr := trajectory.Trajectory{ID: id}
	for _, p := range pts {
		tr.Samples = append(tr.Samples, trajectory.Sample{X: p[0], Y: p[1], T: p[2]})
	}
	return tr
}

func randTraj(rng *rand.Rand, id trajectory.ID, n int, span float64) trajectory.Trajectory {
	tr := trajectory.Trajectory{ID: id, Samples: make([]trajectory.Sample, n)}
	x, y := rng.Float64()*10, rng.Float64()*10
	for i := 0; i < n; i++ {
		tr.Samples[i] = trajectory.Sample{X: x, Y: y, T: span * float64(i) / float64(n-1)}
		x += rng.NormFloat64()
		y += rng.NormFloat64()
	}
	return tr
}

func TestLCSSIdentical(t *testing.T) {
	a := traj(1, [3]float64{0, 0, 0}, [3]float64{1, 1, 1}, [3]float64{2, 2, 2})
	b := a.Clone()
	if got := LCSS(&a, &b, 0.1, -1); got != 1 {
		t.Fatalf("identical LCSS = %v", got)
	}
	if got := LCSSDistance(&a, &b, 0.1, -1); got != 0 {
		t.Fatalf("identical LCSS distance = %v", got)
	}
}

func TestLCSSDisjoint(t *testing.T) {
	a := traj(1, [3]float64{0, 0, 0}, [3]float64{1, 0, 1})
	b := traj(2, [3]float64{100, 100, 0}, [3]float64{101, 100, 1})
	if got := LCSS(&a, &b, 0.5, -1); got != 0 {
		t.Fatalf("disjoint LCSS = %v", got)
	}
}

func TestLCSSPartialAndOutliers(t *testing.T) {
	// b equals a with one wild outlier: LCSS should ignore it (its main
	// advantage over Euclidean/DTW).
	a := traj(1,
		[3]float64{0, 0, 0}, [3]float64{1, 0, 1}, [3]float64{2, 0, 2},
		[3]float64{3, 0, 3}, [3]float64{4, 0, 4})
	b := a.Clone()
	b.Samples[2].X = 500
	got := LCSS(&a, &b, 0.1, -1)
	if math.Abs(got-0.8) > 1e-12 { // 4 of 5 match
		t.Fatalf("outlier LCSS = %v, want 0.8", got)
	}
}

func TestLCSSBandConstraint(t *testing.T) {
	// Same positions but shifted by 3 indices: a generous band finds them,
	// a tight band does not.
	var a, b trajectory.Trajectory
	a.ID, b.ID = 1, 2
	for i := 0; i < 10; i++ {
		a.Samples = append(a.Samples, trajectory.Sample{X: float64(i), Y: 0, T: float64(i)})
	}
	for i := 0; i < 10; i++ {
		b.Samples = append(b.Samples, trajectory.Sample{X: float64(i - 3), Y: 0, T: float64(i)})
	}
	loose := LCSS(&a, &b, 0.1, 5)
	tight := LCSS(&a, &b, 0.1, 1)
	if loose <= tight {
		t.Fatalf("band should matter: loose=%v tight=%v", loose, tight)
	}
}

func TestLCSSSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a := randTraj(rng, 1, 5+rng.Intn(20), 10)
		b := randTraj(rng, 2, 5+rng.Intn(20), 10)
		if LCSS(&a, &b, 1, -1) != LCSS(&b, &a, 1, -1) {
			t.Fatal("LCSS must be symmetric without a band")
		}
	}
}

func TestEDRIdenticalAndBounds(t *testing.T) {
	a := traj(1, [3]float64{0, 0, 0}, [3]float64{1, 1, 1}, [3]float64{2, 2, 2})
	b := a.Clone()
	if got := EDR(&a, &b, 0.1); got != 0 {
		t.Fatalf("identical EDR = %v", got)
	}
	// Length difference lower-bounds EDR.
	c := traj(3, [3]float64{0, 0, 0}, [3]float64{1, 1, 1})
	if got := EDR(&a, &c, 0.1); got != 1 {
		t.Fatalf("EDR with one missing sample = %v", got)
	}
	// Completely different: at most max(n, m).
	d := traj(4, [3]float64{50, 50, 0}, [3]float64{51, 51, 1}, [3]float64{52, 52, 2})
	if got := EDR(&a, &d, 0.1); got != 3 {
		t.Fatalf("disjoint EDR = %v", got)
	}
}

// The paper's analytical argument (§5.2): for a compressed trajectory Ac
// of A (n vertices → m), EDR(A, Ac) ≥ n − m, so a short unrelated
// trajectory T with max(m, k) ≤ n − m can beat the original under EDR.
func TestEDRCompressionWeakness(t *testing.T) {
	// A: 40 samples along a line; Ac: its 2-point compression.
	var a trajectory.Trajectory
	a.ID = 1
	for i := 0; i < 40; i++ {
		a.Samples = append(a.Samples, trajectory.Sample{X: float64(i), Y: 0, T: float64(i)})
	}
	ac := traj(2, [3]float64{0, 0, 0}, [3]float64{39, 0, 39})
	// T: a tiny 2-vertex trajectory spatially far from A.
	tt := traj(3, [3]float64{500, 500, 0}, [3]float64{501, 500, 39})
	edrOrig := EDR(&a, &ac, 0.5)
	edrFar := EDR(&tt, &ac, 0.5)
	if edrFar > edrOrig {
		t.Fatalf("expected EDR to prefer the tiny far trajectory: orig=%d far=%d", edrOrig, edrFar)
	}
}

func TestDTW(t *testing.T) {
	a := traj(1, [3]float64{0, 0, 0}, [3]float64{1, 0, 1}, [3]float64{2, 0, 2})
	b := a.Clone()
	if got := DTW(&a, &b); got != 0 {
		t.Fatalf("identical DTW = %v", got)
	}
	// Constant offset of 1 in y: each of 3 alignments costs 1.
	c := traj(2, [3]float64{0, 1, 0}, [3]float64{1, 1, 1}, [3]float64{2, 1, 2})
	if got := DTW(&a, &c); math.Abs(got-3) > 1e-12 {
		t.Fatalf("offset DTW = %v, want 3", got)
	}
	// DTW tolerates time stretching: b sampled twice as densely.
	d := traj(3,
		[3]float64{0, 0, 0}, [3]float64{0.5, 0, 0.5}, [3]float64{1, 0, 1},
		[3]float64{1.5, 0, 1.5}, [3]float64{2, 0, 2})
	if got := DTW(&a, &d); got > 1.1 {
		t.Fatalf("stretched DTW = %v, expected small", got)
	}
}

func TestInterpolateToTimestamps(t *testing.T) {
	q := traj(1, [3]float64{0, 0, 0}, [3]float64{10, 0, 10})
	data := traj(2,
		[3]float64{0, 1, 0}, [3]float64{2, 1, 2}, [3]float64{5, 1, 5},
		[3]float64{8, 1, 8}, [3]float64{10, 1, 10})
	qi := InterpolateToTimestamps(&q, &data)
	if len(qi.Samples) != 5 {
		t.Fatalf("aligned query has %d samples: %+v", len(qi.Samples), qi.Samples)
	}
	// Interpolated positions lie on q's motion.
	for _, s := range qi.Samples {
		if math.Abs(s.X-s.T) > 1e-12 || s.Y != 0 {
			t.Fatalf("interpolated sample off course: %+v", s)
		}
	}
	// Data timestamps outside q's lifespan are not added.
	short := traj(3, [3]float64{0, 0, 2}, [3]float64{1, 0, 4})
	qs := InterpolateToTimestamps(&short, &data)
	for _, s := range qs.Samples {
		if s.T < 2 || s.T > 4 {
			t.Fatalf("sample outside lifespan: %+v", s)
		}
	}
}

// The paper's headline quality claim in miniature: with a 4-sample query
// against a 32-sample version of the same course (Fig. 1), plain LCSS/EDR
// fail while their -I variants and DISSIM succeed.
func TestImprovedVariantsHandleSamplingRates(t *testing.T) {
	mk := func(id trajectory.ID, n int, yOff float64) trajectory.Trajectory {
		tr := trajectory.Trajectory{ID: id, Samples: make([]trajectory.Sample, n)}
		for i := 0; i < n; i++ {
			tt := 10 * float64(i) / float64(n-1)
			tr.Samples[i] = trajectory.Sample{X: tt, Y: yOff + 0.3*math.Sin(tt), T: tt}
		}
		return tr
	}
	q := mk(0, 4, 0)       // sparse query
	same := mk(1, 32, 0)   // same course, dense sampling
	other := mk(2, 4, 3.0) // different course, matching sampling rate
	eps := 0.5

	// Plain EDR prefers the sampling-rate twin over the true course.
	if EDR(&q, &same, eps) <= EDR(&q, &other, eps) {
		t.Skip("plain EDR unexpectedly fine here; construction too easy")
	}
	// EDR-I must prefer the true course.
	if EDRI(&q, &same, eps) >= EDRI(&q, &other, eps) {
		t.Fatalf("EDR-I: same-course %d vs other %d", EDRI(&q, &same, eps), EDRI(&q, &other, eps))
	}
	// LCSS-I must prefer the true course too.
	if LCSSI(&q, &same, eps, -1) >= LCSSI(&q, &other, eps, -1) {
		t.Fatalf("LCSS-I: same %v vs other %v", LCSSI(&q, &same, eps, -1), LCSSI(&q, &other, eps, -1))
	}
	// And DISSIM trivially prefers it.
	dSame, _ := dissim.Exact(&q, &same, 0, 10)
	dOther, _ := dissim.Exact(&q, &other, 0, 10)
	if dSame >= dOther {
		t.Fatalf("DISSIM: same %v vs other %v", dSame, dOther)
	}
}

func TestEpsilonForDataset(t *testing.T) {
	a := traj(1, [3]float64{-2, 0, 0}, [3]float64{2, 0, 1}) // std 2 on x
	b := traj(2, [3]float64{0, 0, 0}, [3]float64{0, 0.2, 1})
	got := EpsilonForDataset([]trajectory.Trajectory{a, b})
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("eps = %v, want 0.5", got)
	}
}

func TestLinearScanMST(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	trajs := make([]trajectory.Trajectory, 20)
	for i := range trajs {
		trajs[i] = randTraj(rng, trajectory.ID(i+1), 20, 10)
	}
	data, err := trajectory.NewDataset(trajs)
	if err != nil {
		t.Fatal(err)
	}
	// Query = copy of trajectory 5 → it must rank first with DISSIM ≈ 0.
	q := trajs[4].Clone()
	q.ID = 0
	res := LinearScanMST(data, &q, 0, 10, 3)
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].TrajID != 5 || res[0].Dissim > 1e-9 {
		t.Fatalf("top result = %+v, want trajectory 5 at 0", res[0])
	}
	if res[1].Dissim > res[2].Dissim {
		t.Fatal("results must be sorted")
	}
	// k larger than dataset.
	all := LinearScanMST(data, &q, 0, 10, 100)
	if len(all) != 20 {
		t.Fatalf("k beyond dataset: %d results", len(all))
	}
	// Window not covered by anyone → empty.
	if res := LinearScanMST(data, &q, -5, 10, 1); len(res) != 0 {
		t.Fatalf("uncoverable window gave %d results", len(res))
	}
}

func BenchmarkLCSS(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randTraj(rng, 1, 200, 10)
	c := randTraj(rng, 2, 200, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LCSS(&a, &c, 1, -1)
	}
}

func BenchmarkEDR(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randTraj(rng, 1, 200, 10)
	c := randTraj(rng, 2, 200, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EDR(&a, &c, 1)
	}
}

func TestOWD(t *testing.T) {
	// Identical shapes, regardless of sampling or timing: OWD = 0.
	a := traj(1, [3]float64{0, 0, 0}, [3]float64{10, 0, 1})
	b := traj(2, [3]float64{0, 0, 5}, [3]float64{5, 0, 6}, [3]float64{10, 0, 9})
	if got := SymmetricOWD(&a, &b, 8); got > 1e-9 {
		t.Fatalf("same-shape OWD = %v", got)
	}
	// Parallel lines offset by 3: OWD = 3 in both directions.
	c := traj(3, [3]float64{0, 3, 0}, [3]float64{10, 3, 1})
	if got := SymmetricOWD(&a, &c, 8); math.Abs(got-3) > 1e-9 {
		t.Fatalf("parallel OWD = %v, want 3", got)
	}
	// Asymmetry: a short segment vs a long L-shape.
	l := traj(4, [3]float64{0, 0, 0}, [3]float64{10, 0, 1}, [3]float64{10, 10, 2})
	fromA := OWD(&a, &l, 8) // a lies on l → 0
	fromL := OWD(&l, &a, 8) // l's vertical arm is far from a
	if fromA > 1e-9 {
		t.Fatalf("OWD(a→L) = %v, want 0", fromA)
	}
	if fromL < 1 {
		t.Fatalf("OWD(L→a) = %v, should see the far arm", fromL)
	}
	// Degenerate inputs.
	empty := trajectory.Trajectory{ID: 9}
	if got := OWD(&empty, &a, 4); !math.IsInf(got, 1) {
		t.Fatalf("empty OWD = %v", got)
	}
	point := traj(5, [3]float64{0, 4, 0})
	if got := OWD(&point, &a, 4); math.Abs(got-4) > 1e-9 {
		t.Fatalf("point OWD = %v, want 4", got)
	}
}

// OWD ignores time entirely: a time-reversed twin is identical under OWD
// but very dissimilar under DISSIM — the spatial-vs-spatiotemporal
// distinction the paper's introduction draws.
func TestOWDIsTimeBlind(t *testing.T) {
	a := traj(1, [3]float64{0, 0, 0}, [3]float64{10, 0, 10})
	rev := traj(2, [3]float64{10, 0, 0}, [3]float64{0, 0, 10})
	if got := SymmetricOWD(&a, &rev, 8); got > 1e-9 {
		t.Fatalf("reversed OWD = %v, want 0", got)
	}
	d, ok := dissim.Exact(&a, &rev, 0, 10)
	if !ok || d < 10 {
		t.Fatalf("DISSIM of reversed course = %v (ok=%v), should be large", d, ok)
	}
}
