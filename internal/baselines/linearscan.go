// Package baselines implements the comparison methods of the paper's
// experimental study: the LCSS and EDR similarity measures (with the
// paper's interpolation-improved LCSS-I / EDR-I variants), DTW, and a
// brute-force linear-scan k-MST search that serves both as the
// no-index comparison point and as the correctness oracle for
// BFMSTSearch.
package baselines

import (
	"sort"

	"mstsearch/internal/dissim"
	"mstsearch/internal/trajectory"
)

// ScanResult is one ranked answer of a linear scan.
type ScanResult struct {
	TrajID trajectory.ID
	Dissim float64
}

// LinearScanMST computes the exact DISSIM between the query and every
// dataset trajectory covering [t1, t2] and returns the k smallest
// (most similar first). Trajectories not covering the period are skipped,
// mirroring the index algorithm's completion rule.
func LinearScanMST(data *trajectory.Dataset, q *trajectory.Trajectory, t1, t2 float64, k int) []ScanResult {
	if k < 1 {
		k = 1
	}
	out := make([]ScanResult, 0, data.Len())
	for i := range data.Trajs {
		tr := &data.Trajs[i]
		d, ok := dissim.Exact(q, tr, t1, t2)
		if !ok {
			continue
		}
		out = append(out, ScanResult{TrajID: tr.ID, Dissim: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dissim != out[j].Dissim {
			return out[i].Dissim < out[j].Dissim
		}
		return out[i].TrajID < out[j].TrajID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
