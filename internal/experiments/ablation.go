package experiments

import (
	"fmt"
	"io"
	"time"

	"mstsearch/internal/mst"
)

// AblationRow quantifies one search configuration on the same workload.
type AblationRow struct {
	Name         string
	AvgTimeMS    float64
	AvgNodes     float64
	PruningPower float64
}

// RunAblation measures the contribution of each pruning ingredient of
// BFMSTSearch (DESIGN.md §4): both heuristics on, each off, both off, and
// speed-independent-only pruning — all over the same query batch on the 3D
// R-tree.
func RunAblation(cfg PerfConfig, cardinality, numQueries int, qlen float64) ([]AblationRow, error) {
	cfg = cfg.Defaults()
	data := SyntheticDataset(cardinality, cfg.SamplesPerObject, cfg.Seed)
	built, err := BuildIndex(RTree3D, data)
	if err != nil {
		return nil, err
	}
	queries := makeQueries(data, qlen, numQueries, cfg.Seed+99)
	vmax := data.MaxSpeed()

	configs := []struct {
		name string
		opts mst.Options
	}{
		{"full (H1+H2, Vmax)", mst.Options{K: 1, Vmax: vmax}},
		{"no H1 (OPTDISSIM off)", mst.Options{K: 1, Vmax: vmax, DisableHeuristic1: true}},
		{"no H2 (MINDISSIMINC off)", mst.Options{K: 1, Vmax: vmax, DisableHeuristic2: true}},
		{"no H1+H2", mst.Options{K: 1, Vmax: vmax, DisableHeuristic1: true, DisableHeuristic2: true}},
		{"speed-independent only", mst.Options{K: 1, Vmax: 0}},
	}
	rows := make([]AblationRow, 0, len(configs))
	for _, c := range configs {
		tree, bp := built.View()
		var total time.Duration
		var nodes int
		var pruning float64
		for _, q := range queries {
			bp.ResetStats()
			opts := c.opts
			opts.Vmax = c.opts.Vmax
			if opts.Vmax > 0 {
				opts.Vmax += q.traj.MaxSpeed()
			}
			start := time.Now()
			_, st, err := mst.Search(tree, &q.traj, q.t1, q.t2, opts)
			if err != nil {
				return nil, err
			}
			total += time.Since(start)
			nodes += st.NodesAccessed
			pruning += st.PruningPower
		}
		n := float64(len(queries))
		rows = append(rows, AblationRow{
			Name:         c.name,
			AvgTimeMS:    float64(total.Microseconds()) / 1000 / n,
			AvgNodes:     float64(nodes) / n,
			PruningPower: pruning / n,
		})
	}
	return rows, nil
}

// PrintAblation renders the ablation table.
func PrintAblation(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Ablation — pruning ingredient contributions (3D R-tree, k=1)")
	fmt.Fprintf(w, "%-28s%12s%12s%12s\n", "configuration", "time(ms)", "nodes", "pruning%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s%12.2f%12.1f%12.1f\n",
			r.Name, r.AvgTimeMS, r.AvgNodes, r.PruningPower*100)
	}
}
