package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestBuildIndexBothKinds(t *testing.T) {
	data := SyntheticDataset(10, 101, 1)
	for _, kind := range AllTreeKinds {
		b, err := BuildIndex(kind, data)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if b.SizeMB() <= 0 {
			t.Fatalf("%s: zero size", kind)
		}
		tree, bp := b.View()
		if tree.NumNodes() == 0 || tree.Height() == 0 {
			t.Fatalf("%s: empty tree", kind)
		}
		if bp.Capacity() < 1 {
			t.Fatalf("%s: bad buffer capacity", kind)
		}
		if b.Unbuffered().NumNodes() != tree.NumNodes() {
			t.Fatalf("%s: views disagree", kind)
		}
	}
}

func TestTBTreeSmallerThanRTree(t *testing.T) {
	// The Table 2 shape: TB-tree indexes are roughly half the 3D R-tree's
	// size thanks to fully packed leaves.
	data := SyntheticDataset(20, 501, 2)
	r, err := BuildIndex(RTree3D, data)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := BuildIndex(TBTree, data)
	if err != nil {
		t.Fatal(err)
	}
	if tb.SizeMB() >= r.SizeMB() {
		t.Fatalf("TB-tree (%.2f MB) should be smaller than 3D R-tree (%.2f MB)",
			tb.SizeMB(), r.SizeMB())
	}
}

func TestRunTable2Scaled(t *testing.T) {
	rows, err := RunTable2([]int{10, 20}, 301, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Name != "Trucks" || rows[2].Name != "S0020" {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.Entries == 0 || r.RTreeMB <= 0 || r.TBTreeMB <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		// The Table 2 size relation (TB-tree ≈ half the 3D R-tree) holds
		// when trajectories span several leaves; the scaled-down Trucks
		// row has too few segments per truck for the bundling to pay off.
		if strings.HasPrefix(r.Name, "S") && r.TBTreeMB >= r.RTreeMB {
			t.Fatalf("%s: TB-tree not smaller: %+v", r.Name, r)
		}
	}
	var buf bytes.Buffer
	PrintTable2(&buf, rows)
	if !strings.Contains(buf.String(), "Trucks") {
		t.Fatal("printed table must mention Trucks")
	}
}

func TestRunQualityScaled(t *testing.T) {
	rows := RunQuality(QualityConfig{
		Scale:      0.06, // ~16 trucks, ~400 segments
		NumQueries: 8,
		PValues:    []float64{0.001, 0.05},
		Seed:       3,
	})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, m := range QualityMeasures {
			v, ok := r.FalsePercent[m]
			if !ok || v < 0 || v > 100 {
				t.Fatalf("row %+v: bad %s", r, m)
			}
		}
	}
	// The paper's headline: DISSIM at small p identifies the original.
	if rows[0].FalsePercent["DISSIM"] > 20 {
		t.Fatalf("DISSIM at p=0.1%% should be near-perfect: %+v", rows[0])
	}
	var buf bytes.Buffer
	PrintQuality(&buf, rows)
	if !strings.Contains(buf.String(), "DISSIM") {
		t.Fatal("printed table must mention DISSIM")
	}
}

func TestRunCompressionScaled(t *testing.T) {
	rows := RunCompression(QualityConfig{Scale: 0.06, Seed: 3})
	if len(rows) < 3 || rows[0].P != 0 {
		t.Fatalf("rows = %+v", rows)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Vertices > rows[i-1].Vertices {
			t.Fatalf("vertex counts must not increase with p: %+v", rows)
		}
	}
	var buf bytes.Buffer
	PrintCompression(&buf, rows)
	if !strings.Contains(buf.String(), "vertices") {
		t.Fatal("printed table header missing")
	}
}

func TestRunnerQ1Scaled(t *testing.T) {
	r := NewRunner(PerfConfig{SamplesPerObject: 101, NumQueries: 5, Seed: 1})
	rows, err := r.Run(QuerySettings{
		Name:          "Q1",
		Cardinalities: []int{10, 20},
		QueryLengths:  []float64{0.05},
		Ks:            []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 cardinalities × 2 trees
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Queries != 5 || row.AvgNodes <= 0 {
			t.Fatalf("bad row %+v", row)
		}
		if row.PruningPower < 0 || row.PruningPower > 1 {
			t.Fatalf("pruning power out of range: %+v", row)
		}
	}
	var buf bytes.Buffer
	PrintPerf(&buf, "Q1", rows)
	if !strings.Contains(buf.String(), "pruning%") {
		t.Fatal("printed perf header missing")
	}
	// Dataset caching: re-running must not rebuild (hit the cache).
	if len(r.cache) != 2 {
		t.Fatalf("expected 2 cached datasets, got %d", len(r.cache))
	}
}

func TestPaperQuerySettingsShape(t *testing.T) {
	qss := PaperQuerySettings()
	if len(qss) != 3 {
		t.Fatalf("want Q1..Q3, got %d", len(qss))
	}
	if qss[0].Cardinalities[len(qss[0].Cardinalities)-1] != 1000 {
		t.Fatal("Q1 must scale to S1000")
	}
	if qss[1].QueryLengths[len(qss[1].QueryLengths)-1] != 1.0 {
		t.Fatal("Q2 must scale to 100% query length")
	}
	if qss[2].Ks[len(qss[2].Ks)-1] != 10 {
		t.Fatal("Q3 must scale to k=10")
	}
	for _, qs := range qss {
		if qs.NumQueries != 500 {
			t.Fatalf("%s: paper uses 500 queries", qs.Name)
		}
	}
}

func TestRunAblationScaled(t *testing.T) {
	rows, err := RunAblation(PerfConfig{SamplesPerObject: 101, Seed: 1}, 15, 5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	full, noBoth := rows[0], rows[3]
	if full.Name == "" || full.AvgNodes <= 0 {
		t.Fatalf("degenerate row %+v", full)
	}
	// Heuristics must not increase node accesses.
	if noBoth.AvgNodes < full.AvgNodes-1e-9 {
		t.Fatalf("disabling heuristics reduced work: %+v vs %+v", noBoth, full)
	}
	var buf bytes.Buffer
	PrintAblation(&buf, rows)
	if !strings.Contains(buf.String(), "pruning%") {
		t.Fatal("printed ablation header missing")
	}
}
