package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"mstsearch/internal/baselines"
	"mstsearch/internal/tdtr"
	"mstsearch/internal/trajectory"
)

// QualityConfig parameterizes the Fig. 9 experiment.
type QualityConfig struct {
	// Scale shrinks the Trucks-like dataset for fast runs (1 = paper
	// scale: 273 trucks / ~112K segments).
	Scale float64
	// NumQueries caps how many compressed trajectories query the dataset
	// per p value (0 = every trajectory, as in the paper).
	NumQueries int
	// PValues are the TD-TR parameters swept on the x axis of Fig. 9.
	PValues []float64
	// LCSSDelta is the LCSS index-offset band (< 0 disables, the
	// behaviour matching the paper's time-translation-tolerant setting).
	LCSSDelta int
	Seed      int64
}

// Defaults fills zero fields with the paper's settings.
func (c QualityConfig) Defaults() QualityConfig {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if len(c.PValues) == 0 {
		c.PValues = []float64{0.001, 0.01, 0.02, 0.05, 0.10}
	}
	if c.LCSSDelta == 0 {
		c.LCSSDelta = -1
	}
	return c
}

// QualityMeasures lists the Fig. 9 series in presentation order.
var QualityMeasures = []string{"DISSIM", "LCSS", "LCSS-I", "EDR", "EDR-I"}

// QualityRow is one x-position of Fig. 9: the TD-TR parameter and the
// percentage of false k=1 answers per measure.
type QualityRow struct {
	P            float64
	FalsePercent map[string]float64
	Queries      int
}

// RunQuality reproduces Fig. 9: every trajectory of the (Trucks-like)
// dataset is compressed with TD-TR at parameter p and used as a k=1 query
// against the original dataset under each similarity measure; an answer is
// false when the original trajectory is not ranked first. LCSS/EDR run on
// normalized trajectories with ε = max-stddev/4 (§5.2); the -I variants
// additionally interpolate the query at the data trajectory's timestamps.
func RunQuality(cfg QualityConfig) []QualityRow {
	cfg = cfg.Defaults()
	data := TrucksDataset(cfg.Scale, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	// Pre-normalize the dataset once for the LCSS/EDR family.
	norm := make([]trajectory.Trajectory, data.Len())
	for i := range data.Trajs {
		norm[i] = trajectory.Normalize(&data.Trajs[i])
	}
	eps := baselines.EpsilonForDataset(norm)

	queryIdx := rng.Perm(data.Len())
	if cfg.NumQueries > 0 && cfg.NumQueries < len(queryIdx) {
		queryIdx = queryIdx[:cfg.NumQueries]
	}

	rows := make([]QualityRow, 0, len(cfg.PValues))
	for _, p := range cfg.PValues {
		false1 := map[string]int{}
		for _, qi := range queryIdx {
			orig := &data.Trajs[qi]
			comp := tdtr.CompressRatio(orig, p)
			comp.ID = 0

			// DISSIM: exact linear scan over the raw dataset.
			res := baselines.LinearScanMST(data, &comp, orig.StartTime(), orig.EndTime(), 1)
			if len(res) == 0 || res[0].TrajID != orig.ID {
				false1["DISSIM"]++
			}

			// LCSS/EDR family on normalized data.
			compN := trajectory.Normalize(&comp)
			if top1(norm, func(tr *trajectory.Trajectory) float64 {
				return baselines.LCSSDistance(&compN, tr, eps, cfg.LCSSDelta)
			}) != orig.ID {
				false1["LCSS"]++
			}
			if top1(norm, func(tr *trajectory.Trajectory) float64 {
				return baselines.LCSSI(&compN, tr, eps, cfg.LCSSDelta)
			}) != orig.ID {
				false1["LCSS-I"]++
			}
			if top1(norm, func(tr *trajectory.Trajectory) float64 {
				return float64(baselines.EDR(&compN, tr, eps))
			}) != orig.ID {
				false1["EDR"]++
			}
			if top1(norm, func(tr *trajectory.Trajectory) float64 {
				return float64(baselines.EDRI(&compN, tr, eps))
			}) != orig.ID {
				false1["EDR-I"]++
			}
		}
		row := QualityRow{P: p, FalsePercent: map[string]float64{}, Queries: len(queryIdx)}
		for _, m := range QualityMeasures {
			row.FalsePercent[m] = 100 * float64(false1[m]) / float64(len(queryIdx))
		}
		rows = append(rows, row)
	}
	return rows
}

// top1 returns the ID of the trajectory minimizing the distance function
// (ties broken by lower ID, matching LinearScanMST).
func top1(trajs []trajectory.Trajectory, distFn func(*trajectory.Trajectory) float64) trajectory.ID {
	bestID := trajectory.ID(0)
	best := 0.0
	first := true
	for i := range trajs {
		d := distFn(&trajs[i])
		if first || d < best || (d == best && trajs[i].ID < bestID) {
			best, bestID, first = d, trajs[i].ID, false
		}
	}
	return bestID
}

// PrintQuality renders the Fig. 9 rows as an aligned table.
func PrintQuality(w io.Writer, rows []QualityRow) {
	fmt.Fprintf(w, "Figure 9 — false k=1 results (%%) vs TD-TR parameter p (%d queries/row)\n",
		rowsQueries(rows))
	fmt.Fprintf(w, "%-8s", "p")
	for _, m := range QualityMeasures {
		fmt.Fprintf(w, "%10s", m)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s", fmt.Sprintf("%.1f%%", r.P*100))
		for _, m := range QualityMeasures {
			fmt.Fprintf(w, "%10.1f", r.FalsePercent[m])
		}
		fmt.Fprintln(w)
	}
}

func rowsQueries(rows []QualityRow) int {
	if len(rows) == 0 {
		return 0
	}
	return rows[0].Queries
}

// CompressionRow is one panel of Fig. 8: the TD-TR parameter and the
// vertex count of the example trajectory.
type CompressionRow struct {
	P        float64
	Vertices int
}

// RunCompression reproduces Fig. 8: the vertex counts of one trajectory
// compressed at increasing p. The paper shows the trajectory with the most
// vertices in Trucks (168 at p = 0 in their plot); we use the longest
// trajectory of the generated fleet.
func RunCompression(cfg QualityConfig) []CompressionRow {
	cfg = cfg.Defaults()
	data := TrucksDataset(cfg.Scale, cfg.Seed)
	longest := &data.Trajs[0]
	for i := range data.Trajs {
		if len(data.Trajs[i].Samples) > len(longest.Samples) {
			longest = &data.Trajs[i]
		}
	}
	ps := append([]float64{0}, cfg.PValues...)
	sort.Float64s(ps)
	rows := make([]CompressionRow, 0, len(ps))
	for _, p := range ps {
		c := tdtr.CompressRatio(longest, p)
		rows = append(rows, CompressionRow{P: p, Vertices: len(c.Samples)})
	}
	return rows
}

// PrintCompression renders the Fig. 8 rows.
func PrintCompression(w io.Writer, rows []CompressionRow) {
	fmt.Fprintln(w, "Figure 8 — vertices of an example trajectory under TD-TR compression")
	fmt.Fprintf(w, "%-8s%10s\n", "p", "vertices")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s%10d\n", fmt.Sprintf("%.1f%%", r.P*100), r.Vertices)
	}
}
