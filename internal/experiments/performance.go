package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"mstsearch/internal/mst"
	"mstsearch/internal/trajectory"
)

// QuerySettings mirrors Table 3: the workload of one query set.
type QuerySettings struct {
	Name string
	// Cardinalities are the synthetic dataset sizes (number of objects).
	Cardinalities []int
	// QueryLengths are the query durations as fractions of the dataset
	// period.
	QueryLengths []float64
	// Ks are the numbers of requested neighbours.
	Ks []int
	// NumQueries is the number of queries per setting (paper: 500).
	NumQueries int
}

// PaperQuerySettings returns the three query sets of Table 3.
func PaperQuerySettings() []QuerySettings {
	return []QuerySettings{
		{Name: "Q1", Cardinalities: []int{100, 250, 500, 1000}, QueryLengths: []float64{0.05}, Ks: []int{1}, NumQueries: 500},
		{Name: "Q2", Cardinalities: []int{500}, QueryLengths: []float64{0.01, 0.05, 0.10, 0.25, 0.50, 1.0}, Ks: []int{1}, NumQueries: 500},
		{Name: "Q3", Cardinalities: []int{500}, QueryLengths: []float64{0.05}, Ks: []int{1, 2, 5, 10}, NumQueries: 500},
	}
}

// PerfConfig parameterizes the Fig. 10 experiments.
type PerfConfig struct {
	// IncludeSTRTree adds the STR-tree as a third series beyond the
	// paper's two structures.
	IncludeSTRTree bool
	// SamplesPerObject scales the per-object sampling (paper: 2001 →
	// ~2000 segments each). Smaller values give fast test runs with the
	// same workload shape.
	SamplesPerObject int
	// NumQueries overrides the per-setting query count when > 0.
	NumQueries int
	Seed       int64
}

// Defaults fills zero fields.
func (c PerfConfig) Defaults() PerfConfig {
	if c.SamplesPerObject == 0 {
		c.SamplesPerObject = 2001
	}
	return c
}

// PerfRow is one x-position of a Fig. 10 panel for one tree: averaged
// execution time, pruning power and I/O over the query batch.
type PerfRow struct {
	Setting      string // e.g. "Q1"
	Tree         TreeKind
	Cardinality  int
	QueryLength  float64
	K            int
	Queries      int
	AvgTimeMS    float64
	PruningPower float64
	AvgNodes     float64
	AvgPageReads float64 // physical reads through the paper buffer
	AvgBufHits   float64
}

// perfDataset caches one built cardinality across settings.
type perfDataset struct {
	data    *trajectory.Dataset
	vmax    float64
	indexes map[TreeKind]*BuiltIndex
}

// Runner executes the performance study, reusing datasets and indexes
// across query sets.
type Runner struct {
	cfg   PerfConfig
	cache map[int]*perfDataset
	// Progress, when non-nil, receives coarse progress lines.
	Progress func(string)
}

// NewRunner creates a runner.
func NewRunner(cfg PerfConfig) *Runner {
	return &Runner{cfg: cfg.Defaults(), cache: map[int]*perfDataset{}}
}

// treeKinds returns the tree series this runner evaluates.
func (r *Runner) treeKinds() []TreeKind {
	if r.cfg.IncludeSTRTree {
		return AllTreeKinds
	}
	return TreeKinds
}

func (r *Runner) logf(format string, args ...any) {
	if r.Progress != nil {
		r.Progress(fmt.Sprintf(format, args...))
	}
}

// dataset returns (building if needed) the synthetic dataset and indexes
// for a cardinality.
func (r *Runner) dataset(card int) (*perfDataset, error) {
	if d, ok := r.cache[card]; ok {
		return d, nil
	}
	r.logf("generating S%04d (%d objects x %d samples)", card, card, r.cfg.SamplesPerObject)
	data := SyntheticDataset(card, r.cfg.SamplesPerObject, r.cfg.Seed)
	pd := &perfDataset{data: data, vmax: data.MaxSpeed(), indexes: map[TreeKind]*BuiltIndex{}}
	for _, kind := range r.treeKinds() {
		r.logf("building %s over S%04d", kind, card)
		b, err := BuildIndex(kind, data)
		if err != nil {
			return nil, err
		}
		r.logf("built %s: %.1f MB in %s", kind, b.SizeMB(), b.BuildTime.Round(time.Millisecond))
		pd.indexes[kind] = b
	}
	r.cache[card] = pd
	return pd, nil
}

// Run executes one query set and returns a row per (tree, x-position).
func (r *Runner) Run(qs QuerySettings) ([]PerfRow, error) {
	if r.cfg.NumQueries > 0 {
		qs.NumQueries = r.cfg.NumQueries
	}
	if qs.NumQueries <= 0 {
		qs.NumQueries = 500
	}
	var rows []PerfRow
	for _, card := range qs.Cardinalities {
		pd, err := r.dataset(card)
		if err != nil {
			return nil, err
		}
		for _, qlen := range qs.QueryLengths {
			for _, k := range qs.Ks {
				queries := makeQueries(pd.data, qlen, qs.NumQueries, r.cfg.Seed+int64(card))
				for _, kind := range r.treeKinds() {
					row, err := r.runBatch(qs.Name, pd, kind, queries, qlen, k)
					if err != nil {
						return nil, err
					}
					row.Cardinality = card
					rows = append(rows, row)
					r.logf("%s %s card=%d len=%.0f%% k=%d: %.2f ms, pruning %.1f%%",
						qs.Name, kind, card, qlen*100, k, row.AvgTimeMS, row.PruningPower*100)
				}
			}
		}
	}
	return rows, nil
}

// query is one prepared query trajectory with its period.
type query struct {
	traj   trajectory.Trajectory
	t1, t2 float64
}

// makeQueries derives query trajectories as parts of random data
// trajectories (Table 3): a random window of the requested relative
// length.
func makeQueries(data *trajectory.Dataset, qlen float64, n int, seed int64) []query {
	rng := rand.New(rand.NewSource(seed))
	out := make([]query, 0, n)
	for len(out) < n {
		src := &data.Trajs[rng.Intn(data.Len())]
		dur := src.Duration() * qlen
		start := src.StartTime()
		if qlen < 1 {
			start += rng.Float64() * (src.Duration() - dur)
		}
		sl, ok := src.Slice(start, start+dur)
		if !ok || sl.NumSegments() < 1 {
			continue
		}
		q := sl.Clone()
		q.ID = 0
		out = append(out, query{traj: q, t1: sl.StartTime(), t2: sl.EndTime()})
	}
	return out
}

// runBatch executes the query batch against one index behind a fresh
// paper buffer and averages the metrics.
func (r *Runner) runBatch(name string, pd *perfDataset, kind TreeKind, queries []query, qlen float64, k int) (PerfRow, error) {
	tree, bp := pd.indexes[kind].View()
	row := PerfRow{Setting: name, Tree: kind, QueryLength: qlen, K: k, Queries: len(queries)}
	var totalTime time.Duration
	var totalPruning float64
	var totalNodes int
	for _, q := range queries {
		bp.ResetStats()
		opts := mst.Options{K: k, Vmax: pd.vmax + q.traj.MaxSpeed()}
		start := time.Now()
		_, stats, err := mst.Search(tree, &q.traj, q.t1, q.t2, opts)
		if err != nil {
			return row, fmt.Errorf("experiments: %s on %s: %w", name, kind, err)
		}
		totalTime += time.Since(start)
		totalPruning += stats.PruningPower
		totalNodes += stats.NodesAccessed
		s := bp.Stats()
		row.AvgPageReads += float64(s.Reads)
		row.AvgBufHits += float64(s.Hits)
	}
	n := float64(len(queries))
	row.AvgTimeMS = float64(totalTime.Microseconds()) / 1000 / n
	row.PruningPower = totalPruning / n
	row.AvgNodes = float64(totalNodes) / n
	row.AvgPageReads /= n
	row.AvgBufHits /= n
	return row, nil
}

// PrintPerf renders Fig. 10-style rows for one query set.
func PrintPerf(w io.Writer, setting string, rows []PerfRow) {
	fmt.Fprintf(w, "Figure 10 (%s) — execution time and pruning power\n", setting)
	fmt.Fprintf(w, "%-10s%8s%8s%6s%12s%12s%12s%12s\n",
		"tree", "objs", "len%", "k", "time(ms)", "pruning%", "nodes", "pageReads")
	for _, r := range rows {
		if r.Setting != setting {
			continue
		}
		fmt.Fprintf(w, "%-10s%8d%8.0f%6d%12.2f%12.1f%12.1f%12.1f\n",
			r.Tree, r.Cardinality, r.QueryLength*100, r.K,
			r.AvgTimeMS, r.PruningPower*100, r.AvgNodes, r.AvgPageReads)
	}
}

// Table2Row is one dataset line of Table 2.
type Table2Row struct {
	Name     string
	Objects  int
	Entries  int
	RTreeMB  float64
	TBTreeMB float64
}

// RunTable2 reproduces Table 2: dataset cardinalities and the sizes of
// both indexes. trucksScale and samplesPerObject allow scaled-down runs.
func RunTable2(cardinalities []int, samplesPerObject int, trucksScale float64, seed int64) ([]Table2Row, error) {
	var rows []Table2Row
	build := func(name string, data *trajectory.Dataset) error {
		row := Table2Row{Name: name, Objects: data.Len(), Entries: data.NumSegments()}
		r, err := BuildIndex(RTree3D, data)
		if err != nil {
			return err
		}
		row.RTreeMB = r.SizeMB()
		t, err := BuildIndex(TBTree, data)
		if err != nil {
			return err
		}
		row.TBTreeMB = t.SizeMB()
		rows = append(rows, row)
		return nil
	}
	if err := build("Trucks", TrucksDataset(trucksScale, seed)); err != nil {
		return nil, err
	}
	for _, card := range cardinalities {
		if err := build(fmt.Sprintf("S%04d", card), SyntheticDataset(card, samplesPerObject, seed)); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// PrintTable2 renders Table 2.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2 — dataset summary and index sizes")
	fmt.Fprintf(w, "%-10s%10s%14s%14s%14s\n", "dataset", "objects", "entries(x1K)", "3DR-tree(MB)", "TB-tree(MB)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s%10d%14.0f%14.1f%14.1f\n",
			r.Name, r.Objects, float64(r.Entries)/1000, r.RTreeMB, r.TBTreeMB)
	}
}
