// Package experiments reproduces the paper's experimental study (§5):
// dataset construction (Trucks-like fleet + GSTD synthetics S0100…S1000),
// index building on the 3D R-tree and the TB-tree over 4 KB pages with the
// paper's buffering policy, the quality experiment of Fig. 9, the TD-TR
// compression illustration of Fig. 8, the dataset/index summary of
// Table 2, and the performance experiments Q1–Q3 of Fig. 10 (Table 3).
package experiments

import (
	"fmt"
	"time"

	"mstsearch/internal/gstd"
	"mstsearch/internal/index"
	"mstsearch/internal/rtree"
	"mstsearch/internal/storage"
	"mstsearch/internal/strtree"
	"mstsearch/internal/tbtree"
	"mstsearch/internal/trajectory"
	"mstsearch/internal/trucks"
)

// TreeKind selects an index structure.
type TreeKind int

// The structures of the paper's §4.5. The paper evaluates the 3D R-tree
// and the TB-tree; the STR-tree is available as an extension series.
const (
	RTree3D TreeKind = iota
	TBTree
	STRTree
)

// String returns the paper's name for the structure.
func (k TreeKind) String() string {
	switch k {
	case TBTree:
		return "TB-tree"
	case STRTree:
		return "STR-tree"
	default:
		return "3D R-tree"
	}
}

// TreeKinds lists the paper's two structures in presentation order;
// AllTreeKinds adds the STR-tree extension series.
var (
	TreeKinds    = []TreeKind{RTree3D, TBTree}
	AllTreeKinds = []TreeKind{RTree3D, TBTree, STRTree}
)

// BuiltIndex is a dataset indexed by one structure: the backing page file,
// reopen metadata, and build statistics.
type BuiltIndex struct {
	Kind      TreeKind
	File      *storage.File
	RMeta     rtree.Meta
	TMeta     tbtree.Meta
	SMeta     strtree.Meta
	BuildTime time.Duration
}

// BuildIndex inserts every segment of the dataset into a fresh index of
// the requested kind, trajectory by trajectory (the insertion order a MOD
// would see as histories are archived).
func BuildIndex(kind TreeKind, data *trajectory.Dataset) (*BuiltIndex, error) {
	f := storage.NewFile(storage.DefaultPageSize)
	b := &BuiltIndex{Kind: kind, File: f}
	start := time.Now()
	switch kind {
	case TBTree:
		t := tbtree.New(f)
		for i := range data.Trajs {
			if err := t.InsertTrajectory(&data.Trajs[i]); err != nil {
				return nil, fmt.Errorf("experiments: tbtree build: %w", err)
			}
		}
		b.TMeta = t.Meta()
	case STRTree:
		t := strtree.New(f)
		for i := range data.Trajs {
			if err := t.InsertTrajectory(&data.Trajs[i]); err != nil {
				return nil, fmt.Errorf("experiments: strtree build: %w", err)
			}
		}
		b.SMeta = t.Meta()
	default:
		t := rtree.New(f)
		for i := range data.Trajs {
			tr := &data.Trajs[i]
			for s := 0; s < tr.NumSegments(); s++ {
				e := index.LeafEntry{TrajID: tr.ID, SeqNo: uint32(s), Seg: tr.Segment(s)}
				if err := t.Insert(e); err != nil {
					return nil, fmt.Errorf("experiments: rtree build: %w", err)
				}
			}
		}
		b.RMeta = t.Meta()
	}
	b.BuildTime = time.Since(start)
	return b, nil
}

// SizeMB returns the index size in megabytes (pages × page size), the
// quantity reported in Table 2.
func (b *BuiltIndex) SizeMB() float64 {
	return float64(b.File.SizeBytes()) / (1024 * 1024)
}

// View reopens the index for querying behind the paper's buffer policy
// (10 % of the index, ≤1000 pages) and returns the buffer pool for I/O
// accounting.
func (b *BuiltIndex) View() (index.Tree, *storage.BufferPool) {
	bp := storage.NewPaperBuffer(b.File)
	switch b.Kind {
	case TBTree:
		return tbtree.Open(bp, b.TMeta), bp
	case STRTree:
		return strtree.Open(bp, b.SMeta), bp
	default:
		return rtree.Open(bp, b.RMeta), bp
	}
}

// Unbuffered returns a view reading the raw file (every access counted as
// a physical read).
func (b *BuiltIndex) Unbuffered() index.Tree {
	switch b.Kind {
	case TBTree:
		return tbtree.Open(b.File, b.TMeta)
	case STRTree:
		return strtree.Open(b.File, b.SMeta)
	default:
		return rtree.Open(b.File, b.RMeta)
	}
}

// SyntheticDataset generates the GSTD dataset of the given cardinality
// with the study's fixed parameters (Table 2: lognormal speeds, σ = 0.6,
// ~2000 positions per object). samplesPerObject ≤ 0 selects the paper's
// 2001.
func SyntheticDataset(numObjects, samplesPerObject int, seed int64) *trajectory.Dataset {
	cfg := gstd.Config{
		NumObjects:       numObjects,
		SamplesPerObject: samplesPerObject,
		Seed:             seed,
	}
	if samplesPerObject <= 0 {
		cfg.SamplesPerObject = 2001
	}
	return gstd.Generate(cfg)
}

// TrucksDataset generates the Trucks-like fleet (see DESIGN.md for the
// substitution rationale). scale ∈ (0, 1] shrinks both the fleet and the
// per-truck sampling for fast test runs; 1 reproduces the published
// cardinalities.
func TrucksDataset(scale float64, seed int64) *trajectory.Dataset {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	return trucks.Generate(trucks.Config{
		NumTrucks:      maxInt(3, int(273*scale)),
		TargetSegments: maxInt(60, int(112203*scale*scale)),
		Seed:           seed,
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
