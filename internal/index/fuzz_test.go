package index

import (
	"testing"

	"mstsearch/internal/storage"
)

// FuzzDecodeNode feeds arbitrary page bytes to the node decoder: it must
// return an error or a node, never panic or over-read.
func FuzzDecodeNode(f *testing.F) {
	n := &Node{Page: 3, Leaf: true, PrevLeaf: storage.NilPage, NextLeaf: 9}
	n.Leaves = append(n.Leaves, LeafEntry{TrajID: 1, SeqNo: 2})
	if seed, err := EncodeNode(n, 512); err == nil {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		node, err := DecodeNode(0, data)
		if err == nil && node == nil {
			t.Fatal("nil node without error")
		}
		if err == nil {
			// A successfully decoded node must re-encode.
			if _, err := EncodeNode(node, 1<<20); err != nil {
				t.Fatalf("decoded node fails to re-encode: %v", err)
			}
		}
	})
}

// FuzzDecodeMetricNode mirrors FuzzDecodeNode for the metric page layout:
// arbitrary bytes must produce an error or a re-encodable node, never a
// panic or over-read — and the two codecs must keep rejecting each
// other's pages.
func FuzzDecodeMetricNode(f *testing.F) {
	n := &MetricNode{Page: 3, Leaf: true, PivotID: 7}
	n.Leaves = append(n.Leaves, MetricLeafEntry{TrajID: 1, Samples: 4, DistToPivot: 0.5})
	if seed, err := EncodeMetricNode(n, 512); err == nil {
		f.Add(seed)
	}
	mbb := &Node{Page: 3, Leaf: true, PrevLeaf: storage.NilPage, NextLeaf: 9}
	mbb.Leaves = append(mbb.Leaves, LeafEntry{TrajID: 1, SeqNo: 2})
	if seed, err := EncodeNode(mbb, 512); err == nil {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{2, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		node, err := DecodeMetricNode(0, data)
		if err == nil && node == nil {
			t.Fatal("nil node without error")
		}
		if err == nil {
			if _, err := EncodeMetricNode(node, 1<<20); err != nil {
				t.Fatalf("decoded metric node fails to re-encode: %v", err)
			}
			// A page both codecs accept would be ambiguous on disk.
			if _, err := DecodeNode(0, data); err == nil {
				t.Fatal("page decodes as both a metric node and an MBB node")
			}
		}
	})
}
