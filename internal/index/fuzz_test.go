package index

import (
	"testing"

	"mstsearch/internal/storage"
)

// FuzzDecodeNode feeds arbitrary page bytes to the node decoder: it must
// return an error or a node, never panic or over-read.
func FuzzDecodeNode(f *testing.F) {
	n := &Node{Page: 3, Leaf: true, PrevLeaf: storage.NilPage, NextLeaf: 9}
	n.Leaves = append(n.Leaves, LeafEntry{TrajID: 1, SeqNo: 2})
	if seed, err := EncodeNode(n, 512); err == nil {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		node, err := DecodeNode(0, data)
		if err == nil && node == nil {
			t.Fatal("nil node without error")
		}
		if err == nil {
			// A successfully decoded node must re-encode.
			if _, err := EncodeNode(node, 1<<20); err != nil {
				t.Fatalf("decoded node fails to re-encode: %v", err)
			}
		}
	})
}
