package index

import (
	"math"

	"mstsearch/internal/geom"
	"mstsearch/internal/trajectory"
)

// MinDistTrajMBB computes MINDIST(Q, N) as adopted by the paper from the
// NN-search work [6]: the minimum spatial distance between the query
// trajectory's position and the node's spatial extent over the time span
// where the query window [t1, t2], the query trajectory and the node
// temporally coexist. ok is false when there is no such span — the node
// cannot contain any segment relevant to the query period.
func MinDistTrajMBB(q *trajectory.Trajectory, b geom.MBB, t1, t2 float64) (float64, bool) {
	lo := math.Max(t1, math.Max(q.StartTime(), b.MinT))
	hi := math.Min(t2, math.Min(q.EndTime(), b.MaxT))
	if lo > hi {
		return math.Inf(1), false
	}
	best := math.Inf(1)
	rect := b.Rect()
	for i := 0; i < q.NumSegments(); i++ {
		s := q.Segment(i)
		if s.B.T < lo || s.A.T > hi {
			continue
		}
		c, ok := s.ClipTime(lo, hi)
		if !ok {
			continue
		}
		d := geom.DistSegmentRect(c.A.Spatial(), c.B.Spatial(), rect)
		if d < best {
			best = d
			if best == 0 {
				break
			}
		}
	}
	if math.IsInf(best, 1) {
		// The window is a single instant between samples; fall back to the
		// interpolated point.
		p := q.At(lo)
		best = rect.DistPoint(p.Spatial())
	}
	return best, true
}

// MinDistTrajSegment computes the minimum distance over time between the
// query trajectory and one indexed segment inside the window [t1, t2],
// analogous to MinDistTrajMBB but against a concrete moving point.
func MinDistTrajSegment(q *trajectory.Trajectory, seg geom.Segment, t1, t2 float64) (float64, bool) {
	lo := math.Max(t1, math.Max(q.StartTime(), seg.A.T))
	hi := math.Min(t2, math.Min(q.EndTime(), seg.B.T))
	if lo > hi {
		return math.Inf(1), false
	}
	best := math.Inf(1)
	for i := 0; i < q.NumSegments(); i++ {
		qs := q.Segment(i)
		if qs.B.T < lo || qs.A.T > hi {
			continue
		}
		l := math.Max(qs.A.T, lo)
		h := math.Min(qs.B.T, hi)
		if l > h {
			continue
		}
		qc, _ := qs.ClipTime(l, h)
		tc, _ := seg.ClipTime(l, h)
		if d, ok := geom.MinDistSegments(qc, tc); ok && d < best {
			best = d
		}
	}
	if math.IsInf(best, 1) {
		qp := q.At(lo)
		tp := seg.At(lo)
		best = qp.Spatial().Dist(tp.Spatial())
	}
	return best, true
}
