package index

import (
	"math"
	"math/rand"
	"testing"

	"mstsearch/internal/geom"
	"mstsearch/internal/storage"
	"mstsearch/internal/trajectory"
)

func TestFanouts(t *testing.T) {
	// 4 KB pages: (4096-12)/56 = 72 leaf entries, (4096-12)/52 = 78 children.
	if got := MaxLeafEntries(4096); got != 72 {
		t.Fatalf("leaf fanout = %d", got)
	}
	if got := MaxChildEntries(4096); got != 78 {
		t.Fatalf("child fanout = %d", got)
	}
	if MaxLeafEntries(1024) < 10 || MaxChildEntries(1024) < 10 {
		t.Fatal("1 KB pages should still hold a useful fanout")
	}
}

func randLeafEntry(rng *rand.Rand) LeafEntry {
	t0 := rng.Float64() * 100
	return LeafEntry{
		TrajID: trajectory.ID(rng.Intn(1000)),
		SeqNo:  uint32(rng.Intn(10000)),
		Seg: geom.Segment{
			A: geom.STPoint{X: rng.NormFloat64() * 10, Y: rng.NormFloat64() * 10, T: t0},
			B: geom.STPoint{X: rng.NormFloat64() * 10, Y: rng.NormFloat64() * 10, T: t0 + rng.Float64()},
		},
	}
}

func TestNodeCodecRoundTripLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := &Node{Page: 7, Leaf: true, PrevLeaf: 3, NextLeaf: 9}
	for i := 0; i < MaxLeafEntries(4096); i++ {
		n.Leaves = append(n.Leaves, randLeafEntry(rng))
	}
	buf, err := EncodeNode(n, 4096)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeNode(7, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Leaf || got.PrevLeaf != 3 || got.NextLeaf != 9 || got.Page != 7 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Leaves) != len(n.Leaves) {
		t.Fatalf("entry count %d vs %d", len(got.Leaves), len(n.Leaves))
	}
	for i := range n.Leaves {
		if got.Leaves[i] != n.Leaves[i] {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, got.Leaves[i], n.Leaves[i])
		}
	}
}

func TestNodeCodecRoundTripInternal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := &Node{Page: 1, Leaf: false, PrevLeaf: storage.NilPage, NextLeaf: storage.NilPage}
	for i := 0; i < MaxChildEntries(4096); i++ {
		e := randLeafEntry(rng)
		n.Children = append(n.Children, ChildEntry{MBB: e.MBB(), Page: storage.PageID(i)})
	}
	buf, err := EncodeNode(n, 4096)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeNode(1, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Leaf || got.PrevLeaf != storage.NilPage {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range n.Children {
		if got.Children[i] != n.Children[i] {
			t.Fatalf("child %d mismatch", i)
		}
	}
}

func TestEncodeNodeOverflow(t *testing.T) {
	n := &Node{Leaf: true}
	for i := 0; i <= MaxLeafEntries(1024); i++ {
		n.Leaves = append(n.Leaves, LeafEntry{})
	}
	if _, err := EncodeNode(n, 1024); err == nil {
		t.Fatal("overflowing leaf must fail to encode")
	}
	m := &Node{}
	for i := 0; i <= MaxChildEntries(1024); i++ {
		m.Children = append(m.Children, ChildEntry{})
	}
	if _, err := EncodeNode(m, 1024); err == nil {
		t.Fatal("overflowing internal node must fail to encode")
	}
}

func TestDecodeNodeCorrupt(t *testing.T) {
	if _, err := DecodeNode(0, make([]byte, 4)); err == nil {
		t.Fatal("short page must fail")
	}
	// Count larger than the page can hold.
	buf := make([]byte, 64)
	buf[0] = 1
	buf[1] = 0xFF
	buf[2] = 0xFF
	if _, err := DecodeNode(0, buf); err == nil {
		t.Fatal("oversized count must fail")
	}
}

func TestWriteReadNodeThroughPager(t *testing.T) {
	f := storage.NewFile(4096)
	id, _ := f.Alloc()
	rng := rand.New(rand.NewSource(3))
	n := &Node{Page: id, Leaf: true, PrevLeaf: storage.NilPage, NextLeaf: storage.NilPage}
	n.Leaves = append(n.Leaves, randLeafEntry(rng), randLeafEntry(rng))
	if err := WriteNode(f, n); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNode(f, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Leaves) != 2 || got.Leaves[0] != n.Leaves[0] {
		t.Fatalf("round trip through pager failed: %+v", got)
	}
}

func TestNodeMBB(t *testing.T) {
	n := &Node{Leaf: true}
	n.Leaves = append(n.Leaves,
		LeafEntry{Seg: geom.Segment{A: geom.STPoint{X: 0, Y: 0, T: 0}, B: geom.STPoint{X: 2, Y: 2, T: 1}}},
		LeafEntry{Seg: geom.Segment{A: geom.STPoint{X: -1, Y: 5, T: 2}, B: geom.STPoint{X: 0, Y: 6, T: 3}}},
	)
	b := n.MBB()
	want := geom.MBB{MinX: -1, MinY: 0, MinT: 0, MaxX: 2, MaxY: 6, MaxT: 3}
	if b != want {
		t.Fatalf("node MBB = %+v, want %+v", b, want)
	}
	in := &Node{Children: []ChildEntry{{MBB: want, Page: 1}}}
	if in.MBB() != want {
		t.Fatal("internal MBB mismatch")
	}
	if n.Len() != 2 || in.Len() != 1 {
		t.Fatal("Len mismatch")
	}
}

func mkTraj(samples ...[3]float64) trajectory.Trajectory {
	tr := trajectory.Trajectory{ID: 1}
	for _, s := range samples {
		tr.Samples = append(tr.Samples, trajectory.Sample{X: s[0], Y: s[1], T: s[2]})
	}
	return tr
}

func TestMinDistTrajMBB(t *testing.T) {
	q := mkTraj([3]float64{0, 0, 0}, [3]float64{10, 0, 10})
	box := geom.MBB{MinX: 3, MinY: 5, MinT: 2, MaxX: 6, MaxY: 8, MaxT: 8}
	d, ok := MinDistTrajMBB(&q, box, 0, 10)
	if !ok || math.Abs(d-5) > 1e-12 {
		t.Fatalf("d=%v ok=%v, want 5", d, ok)
	}
	// Restricting the window changes nothing here (same spatial course).
	d, _ = MinDistTrajMBB(&q, box, 2, 8)
	if math.Abs(d-5) > 1e-12 {
		t.Fatalf("restricted window d=%v", d)
	}
	// No temporal overlap with the window.
	if _, ok := MinDistTrajMBB(&q, box, 20, 30); ok {
		t.Fatal("window beyond both must report ok=false")
	}
	// Box after the query's lifetime.
	late := geom.MBB{MinX: 0, MinY: 0, MinT: 50, MaxX: 1, MaxY: 1, MaxT: 60}
	if _, ok := MinDistTrajMBB(&q, late, 0, 100); ok {
		t.Fatal("box after query lifetime must report ok=false")
	}
	// Query passes through the box → 0.
	through := geom.MBB{MinX: 4, MinY: -1, MinT: 0, MaxX: 6, MaxY: 1, MaxT: 10}
	d, ok = MinDistTrajMBB(&q, through, 0, 10)
	if !ok || d != 0 {
		t.Fatalf("through-box d=%v ok=%v", d, ok)
	}
}

// MINDIST must lower-bound the distance from the query to every segment a
// node could contain — verified against points sampled inside the box's
// spatiotemporal extent.
func TestMinDistTrajMBBLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 300; iter++ {
		var q trajectory.Trajectory
		q.ID = 1
		tt := 0.0
		x, y := rng.Float64()*50, rng.Float64()*50
		for i := 0; i < 8; i++ {
			q.Samples = append(q.Samples, trajectory.Sample{X: x, Y: y, T: tt})
			tt += 0.5 + rng.Float64()
			x += rng.NormFloat64() * 5
			y += rng.NormFloat64() * 5
		}
		box := geom.MBB{
			MinX: rng.Float64() * 50, MinY: rng.Float64() * 50, MinT: rng.Float64() * 3,
		}
		box.MaxX = box.MinX + rng.Float64()*20
		box.MaxY = box.MinY + rng.Float64()*20
		box.MaxT = box.MinT + rng.Float64()*4
		d, ok := MinDistTrajMBB(&q, box, q.StartTime(), q.EndTime())
		if !ok {
			continue
		}
		// Sample spatial points inside the box at times inside the overlap.
		lo := math.Max(box.MinT, q.StartTime())
		hi := math.Min(box.MaxT, q.EndTime())
		for i := 0; i < 200; i++ {
			ts := lo + rng.Float64()*(hi-lo)
			p := geom.Point{
				X: box.MinX + rng.Float64()*(box.MaxX-box.MinX),
				Y: box.MinY + rng.Float64()*(box.MaxY-box.MinY),
			}
			if got := q.At(ts).Spatial().Dist(p); got < d-1e-9 {
				t.Fatalf("iter %d: point %v at t=%v is %v from query, below MINDIST %v",
					iter, p, ts, got, d)
			}
		}
	}
}

func TestMinDistTrajSegment(t *testing.T) {
	q := mkTraj([3]float64{0, 0, 0}, [3]float64{10, 0, 10})
	seg := geom.Segment{A: geom.STPoint{X: 0, Y: 4, T: 0}, B: geom.STPoint{X: 10, Y: 4, T: 10}}
	d, ok := MinDistTrajSegment(&q, seg, 0, 10)
	if !ok || math.Abs(d-4) > 1e-9 {
		t.Fatalf("d=%v ok=%v", d, ok)
	}
	if _, ok := MinDistTrajSegment(&q, seg, 20, 30); ok {
		t.Fatal("disjoint window must report ok=false")
	}
}
