package index

import (
	"encoding/binary"
	"fmt"
	"math"

	"mstsearch/internal/geom"
	"mstsearch/internal/storage"
	"mstsearch/internal/trajectory"
)

// Metric node model. A metric tree (internal/ntree) indexes whole
// trajectories by distance to pivot trajectories instead of by segment
// MBBs, so its pages carry per-entry distances and covering radii. The
// pages share the MBB codec's header layout and page store; flagMetric
// (bit1) keeps the two entry layouts from ever being confused — DecodeNode
// rejects metric pages and DecodeMetricNode rejects MBB pages, both as
// ErrCorruptNode.
//
// Every entry also carries the aggregate spatio-temporal MBB of the
// trajectories below it. The MBB serves two jobs the pivot distances
// cannot: (a) temporal coverage pruning — a subtree whose MinT > t1 or
// MaxT < t2 holds no trajectory covering the query period, and (b) sound
// lower bounds for the non-metric distances (DTW/LCSS/EDR), whose pruning
// derives from point-to-box geometry rather than the triangle inequality.
const flagMetric = 2

// MetricLeafEntry is one indexed trajectory: its ID, sample count, the
// exact base distance to the leaf's pivot trajectory, and its MBB.
type MetricLeafEntry struct {
	TrajID trajectory.ID
	// Samples is the trajectory's sample count at index time, bounding
	// the length of any window-sliced version of it.
	Samples uint32
	// DistToPivot is the base distance d(pivot, this) — +Inf when the two
	// trajectories share no common time span.
	DistToPivot float64
	MBB         geom.MBB
}

// MetricChildEntry is an internal-node entry: a subtree routed by its
// pivot trajectory with a covering radius.
type MetricChildEntry struct {
	Page storage.PageID
	// PivotID names the subtree's routing trajectory (always a stored
	// trajectory, so search can fetch its geometry by ID).
	PivotID trajectory.ID
	// MinSamples/MaxSamples bound the sample counts of the subtree's
	// trajectories.
	MinSamples uint32
	MaxSamples uint32
	// Radius covers the subtree: for every trajectory x below, the base
	// distance d(pivot, x) <= Radius (+Inf when some member shares no
	// time span with the pivot).
	Radius float64
	MBB    geom.MBB
}

// MetricNode is the in-memory form of one metric-tree node. Exactly one
// of Leaves/Children is used, per Leaf. A leaf's pivot is PivotID; the
// root node's pivot is tracked by the tree's metadata.
type MetricNode struct {
	Page storage.PageID
	Leaf bool
	// PivotID is the node's own routing trajectory (leaf pivots are
	// stored so leaves are self-describing after a page-by-page reload).
	PivotID  trajectory.ID
	Leaves   []MetricLeafEntry
	Children []MetricChildEntry
}

// MBB computes the aggregate bound over the node's entries.
func (n *MetricNode) MBB() geom.MBB {
	b := geom.EmptyMBB()
	if n.Leaf {
		for _, e := range n.Leaves {
			b = b.Expand(e.MBB)
		}
	} else {
		for _, c := range n.Children {
			b = b.Expand(c.MBB)
		}
	}
	return b
}

// Len returns the number of entries in the node.
func (n *MetricNode) Len() int {
	if n.Leaf {
		return len(n.Leaves)
	}
	return len(n.Children)
}

// Metric node page layout (little endian), header shared with MBB nodes:
//
//	[0]     flags: bit0 = leaf, bit1 = metric (always set)
//	[1:3]   entry count (uint16)
//	[3:7]   pivot trajectory ID (uint32; replaces the TB-tree prev link)
//	[7:11]  reserved (uint32, zero)
//	[11:12] padding
//	[12:]   entries
//
// Metric leaf entry (64 B):  trajID u32, samples u32, distToPivot f64,
//
//	minx miny mint maxx maxy maxt f64
//
// Metric child entry (72 B): page u32, pivotID u32, minSamples u32,
//
//	maxSamples u32, radius f64,
//	minx miny mint maxx maxy maxt f64
const (
	metricLeafEntrySize  = 64
	metricChildEntrySize = 72
)

// MaxMetricLeafEntries returns the metric leaf fan-out for a page size.
func MaxMetricLeafEntries(pageSize int) int {
	return (pageSize - nodeHeaderSize) / metricLeafEntrySize
}

// MaxMetricChildEntries returns the metric internal fan-out for a page size.
func MaxMetricChildEntries(pageSize int) int {
	return (pageSize - nodeHeaderSize) / metricChildEntrySize
}

// validDist reports whether v can be a stored distance or radius: finite
// non-negative, or +Inf (disjoint time spans). NaN and negatives are
// corruption.
func validDist(v float64) bool { return v >= 0 || math.IsInf(v, 1) }

// EncodeMetricNode serializes n into a page-sized buffer.
func EncodeMetricNode(n *MetricNode, pageSize int) ([]byte, error) {
	buf := make([]byte, pageSize)
	flags := byte(flagMetric)
	if n.Leaf {
		flags |= 1
	}
	buf[0] = flags
	binary.LittleEndian.PutUint16(buf[1:3], uint16(n.Len()))
	binary.LittleEndian.PutUint32(buf[3:7], uint32(n.PivotID))
	off := nodeHeaderSize
	putF := func(v float64) {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	putU := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[off:], v)
		off += 4
	}
	putMBB := func(b geom.MBB) {
		putF(b.MinX)
		putF(b.MinY)
		putF(b.MinT)
		putF(b.MaxX)
		putF(b.MaxY)
		putF(b.MaxT)
	}
	if n.Leaf {
		if len(n.Leaves) > MaxMetricLeafEntries(pageSize) {
			return nil, fmt.Errorf("index: metric leaf overflow: %d entries", len(n.Leaves))
		}
		for _, e := range n.Leaves {
			putU(uint32(e.TrajID))
			putU(e.Samples)
			putF(e.DistToPivot)
			putMBB(e.MBB)
		}
	} else {
		if len(n.Children) > MaxMetricChildEntries(pageSize) {
			return nil, fmt.Errorf("index: metric internal overflow: %d entries", len(n.Children))
		}
		for _, c := range n.Children {
			putU(uint32(c.Page))
			putU(uint32(c.PivotID))
			putU(c.MinSamples)
			putU(c.MaxSamples)
			putF(c.Radius)
			putMBB(c.MBB)
		}
	}
	return buf, nil
}

// DecodeMetricNode parses a metric node page. Pages without the metric
// flag — including every MBB node page — decode as ErrCorruptNode.
func DecodeMetricNode(page storage.PageID, buf []byte) (*MetricNode, error) {
	if len(buf) < nodeHeaderSize || buf[0]&flagMetric == 0 {
		return nil, ErrCorruptNode
	}
	n := &MetricNode{
		Page:    page,
		Leaf:    buf[0]&1 != 0,
		PivotID: trajectory.ID(binary.LittleEndian.Uint32(buf[3:7])),
	}
	count := int(binary.LittleEndian.Uint16(buf[1:3]))
	off := nodeHeaderSize
	getF := func() float64 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		return v
	}
	getU := func() uint32 {
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v
	}
	getMBB := func() geom.MBB {
		var b geom.MBB
		b.MinX = getF()
		b.MinY = getF()
		b.MinT = getF()
		b.MaxX = getF()
		b.MaxY = getF()
		b.MaxT = getF()
		return b
	}
	if n.Leaf {
		if count > MaxMetricLeafEntries(len(buf)) {
			return nil, ErrCorruptNode
		}
		n.Leaves = make([]MetricLeafEntry, count)
		for i := 0; i < count; i++ {
			e := &n.Leaves[i]
			e.TrajID = trajectory.ID(getU())
			e.Samples = getU()
			e.DistToPivot = getF()
			e.MBB = getMBB()
			// An indexed trajectory has >= 2 samples, a well-formed MBB,
			// and a non-negative (possibly +Inf) pivot distance.
			if e.Samples < 2 || !validDist(e.DistToPivot) || !e.MBB.WellFormed() {
				return nil, ErrCorruptNode
			}
		}
	} else {
		if count > MaxMetricChildEntries(len(buf)) {
			return nil, ErrCorruptNode
		}
		n.Children = make([]MetricChildEntry, count)
		for i := 0; i < count; i++ {
			c := &n.Children[i]
			c.Page = storage.PageID(getU())
			c.PivotID = trajectory.ID(getU())
			c.MinSamples = getU()
			c.MaxSamples = getU()
			c.Radius = getF()
			c.MBB = getMBB()
			if c.MinSamples < 2 || c.MinSamples > c.MaxSamples ||
				!validDist(c.Radius) || !c.MBB.WellFormed() {
				return nil, ErrCorruptNode
			}
		}
	}
	return n, nil
}

// WriteMetricNode encodes and stores n through the pager.
func WriteMetricNode(p storage.Pager, n *MetricNode) error {
	buf, err := EncodeMetricNode(n, p.PageSize())
	if err != nil {
		return err
	}
	return p.Write(n.Page, buf)
}

// ReadMetricNode fetches and decodes the metric node at id.
func ReadMetricNode(p storage.Pager, id storage.PageID) (*MetricNode, error) {
	buf, err := p.Read(id)
	if err != nil {
		return nil, err
	}
	return DecodeMetricNode(id, buf)
}
