package index

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"mstsearch/internal/geom"
	"mstsearch/internal/storage"
	"mstsearch/internal/trajectory"
)

// This file provides the "traditional" spatiotemporal queries the paper's
// introduction says the same index must keep supporting alongside k-MST
// (§1: "a spatiotemporal index to support both classical range,
// topological and similarity based queries"). They are written against the
// Tree interface, so they run on the 3D R-tree and the TB-tree alike.
//
// Every traversal takes a context and checks it between node reads, so a
// canceled or expired query returns promptly with ErrCanceled instead of
// finishing (or worse, spinning) on a doomed request.

// ErrCanceled reports a query abandoned because its context was canceled
// or its deadline expired. Errors wrapping it also wrap the context's own
// error, so errors.Is works against context.Canceled /
// context.DeadlineExceeded too.
var ErrCanceled = errors.New("query canceled")

// ErrDeadlineExceeded refines ErrCanceled for the deadline case: a query
// abandoned because its context's deadline expired (as opposed to an
// explicit cancel). Every error wrapping it also wraps ErrCanceled — the
// historical catch-all — and context.DeadlineExceeded, so existing
// errors.Is call sites keep matching while deadline-aware callers (a
// serving layer deciding between "client went away" and "request timed
// out") can tell the two apart.
var ErrDeadlineExceeded = fmt.Errorf("%w: deadline exceeded", ErrCanceled)

// Canceled returns the typed cancellation error for ctx, or nil when the
// context is still live: ErrDeadlineExceeded for an expired deadline,
// plain ErrCanceled for an explicit cancel — both wrapping the context's
// own error.
func Canceled(ctx context.Context) error {
	err := ctx.Err()
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	default:
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
}

// RangeSearch returns every leaf entry whose bound intersects box —
// the classical spatiotemporal window query.
func RangeSearch(t Tree, box geom.MBB) ([]LeafEntry, error) {
	return RangeSearchContext(context.Background(), t, box)
}

// RangeSearchContext is RangeSearch under a context: cancellation is
// checked before every node read.
func RangeSearchContext(ctx context.Context, t Tree, box geom.MBB) ([]LeafEntry, error) {
	root := t.Root()
	if root == storage.NilPage {
		return nil, nil
	}
	var out []LeafEntry
	stack := []storage.PageID{root}
	for len(stack) > 0 {
		if err := Canceled(ctx); err != nil {
			return nil, err
		}
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := t.ReadNode(id)
		if err != nil {
			return nil, err
		}
		if n.Leaf {
			for _, e := range n.Leaves {
				if e.MBB().Intersects(box) {
					out = append(out, e)
				}
			}
			continue
		}
		for _, c := range n.Children {
			if c.MBB.Intersects(box) {
				stack = append(stack, c.Page)
			}
		}
	}
	return out, nil
}

// NNResult is one nearest-neighbour answer: a moving object and its
// distance from the query point at the query instant.
type NNResult struct {
	TrajID trajectory.ID
	Dist   float64
}

// nnItem is a heap element of the best-first point-NN search.
type nnItem struct {
	page storage.PageID
	dist float64
}

type nnQueue []nnItem

func (q nnQueue) Len() int           { return len(q) }
func (q nnQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q nnQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x any)        { *q = append(*q, x.(nnItem)) }
func (q *nnQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// NearestAt answers the historical point-NN query: the k moving objects
// closest to point p at time instant t (after the NN algorithms of [6]).
// It traverses nodes best-first by spatial MINDIST, skipping subtrees whose
// time span does not contain t, and terminates once the next node cannot
// beat the current k-th distance. Each object is reported once, at its
// interpolated position's distance.
func NearestAt(tr Tree, p geom.Point, t float64, k int) ([]NNResult, error) {
	return NearestAtContext(context.Background(), tr, p, t, k)
}

// NearestAtContext is NearestAt under a context: cancellation is checked
// before every node read.
func NearestAtContext(ctx context.Context, tr Tree, p geom.Point, t float64, k int) ([]NNResult, error) {
	if k < 1 {
		k = 1
	}
	root := tr.Root()
	if root == storage.NilPage {
		return nil, nil
	}
	best := map[trajectory.ID]float64{}
	kth := func() float64 {
		if len(best) < k {
			return math.Inf(1)
		}
		ds := make([]float64, 0, len(best))
		for _, d := range best {
			ds = append(ds, d)
		}
		sort.Float64s(ds)
		return ds[k-1]
	}
	var queue nnQueue
	heap.Push(&queue, nnItem{page: root, dist: 0})
	for queue.Len() > 0 {
		if err := Canceled(ctx); err != nil {
			return nil, err
		}
		it := heap.Pop(&queue).(nnItem)
		if it.dist > kth() {
			break
		}
		n, err := tr.ReadNode(it.page)
		if err != nil {
			return nil, err
		}
		if n.Leaf {
			for _, e := range n.Leaves {
				if t < e.Seg.A.T || t > e.Seg.B.T {
					continue
				}
				d := e.Seg.At(t).Spatial().Dist(p)
				if cur, ok := best[e.TrajID]; !ok || d < cur {
					best[e.TrajID] = d
				}
			}
			continue
		}
		for _, c := range n.Children {
			if t < c.MBB.MinT || t > c.MBB.MaxT {
				continue
			}
			d := c.MBB.Rect().DistPoint(p)
			if d <= kth() {
				heap.Push(&queue, nnItem{page: c.Page, dist: math.Max(d, it.dist)})
			}
		}
	}
	out := make([]NNResult, 0, len(best))
	for id, d := range best {
		out = append(out, NNResult{TrajID: id, Dist: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].TrajID < out[j].TrajID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
