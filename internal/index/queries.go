package index

import (
	"container/heap"
	"math"
	"sort"

	"mstsearch/internal/geom"
	"mstsearch/internal/storage"
	"mstsearch/internal/trajectory"
)

// This file provides the "traditional" spatiotemporal queries the paper's
// introduction says the same index must keep supporting alongside k-MST
// (§1: "a spatiotemporal index to support both classical range,
// topological and similarity based queries"). They are written against the
// Tree interface, so they run on the 3D R-tree and the TB-tree alike.

// RangeSearch returns every leaf entry whose bound intersects box —
// the classical spatiotemporal window query.
func RangeSearch(t Tree, box geom.MBB) ([]LeafEntry, error) {
	root := t.Root()
	if root == storage.NilPage {
		return nil, nil
	}
	var out []LeafEntry
	stack := []storage.PageID{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := t.ReadNode(id)
		if err != nil {
			return nil, err
		}
		if n.Leaf {
			for _, e := range n.Leaves {
				if e.MBB().Intersects(box) {
					out = append(out, e)
				}
			}
			continue
		}
		for _, c := range n.Children {
			if c.MBB.Intersects(box) {
				stack = append(stack, c.Page)
			}
		}
	}
	return out, nil
}

// NNResult is one nearest-neighbour answer: a moving object and its
// distance from the query point at the query instant.
type NNResult struct {
	TrajID trajectory.ID
	Dist   float64
}

// nnItem is a heap element of the best-first point-NN search.
type nnItem struct {
	page storage.PageID
	dist float64
}

type nnQueue []nnItem

func (q nnQueue) Len() int           { return len(q) }
func (q nnQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q nnQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x any)        { *q = append(*q, x.(nnItem)) }
func (q *nnQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// NearestAt answers the historical point-NN query: the k moving objects
// closest to point p at time instant t (after the NN algorithms of [6]).
// It traverses nodes best-first by spatial MINDIST, skipping subtrees whose
// time span does not contain t, and terminates once the next node cannot
// beat the current k-th distance. Each object is reported once, at its
// interpolated position's distance.
func NearestAt(tr Tree, p geom.Point, t float64, k int) ([]NNResult, error) {
	if k < 1 {
		k = 1
	}
	root := tr.Root()
	if root == storage.NilPage {
		return nil, nil
	}
	best := map[trajectory.ID]float64{}
	kth := func() float64 {
		if len(best) < k {
			return math.Inf(1)
		}
		ds := make([]float64, 0, len(best))
		for _, d := range best {
			ds = append(ds, d)
		}
		sort.Float64s(ds)
		return ds[k-1]
	}
	var queue nnQueue
	heap.Push(&queue, nnItem{page: root, dist: 0})
	for queue.Len() > 0 {
		it := heap.Pop(&queue).(nnItem)
		if it.dist > kth() {
			break
		}
		n, err := tr.ReadNode(it.page)
		if err != nil {
			return nil, err
		}
		if n.Leaf {
			for _, e := range n.Leaves {
				if t < e.Seg.A.T || t > e.Seg.B.T {
					continue
				}
				d := e.Seg.At(t).Spatial().Dist(p)
				if cur, ok := best[e.TrajID]; !ok || d < cur {
					best[e.TrajID] = d
				}
			}
			continue
		}
		for _, c := range n.Children {
			if t < c.MBB.MinT || t > c.MBB.MaxT {
				continue
			}
			d := c.MBB.Rect().DistPoint(p)
			if d <= kth() {
				heap.Push(&queue, nnItem{page: c.Page, dist: math.Max(d, it.dist)})
			}
		}
	}
	out := make([]NNResult, 0, len(best))
	for id, d := range best {
		out = append(out, NNResult{TrajID: id, Dist: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].TrajID < out[j].TrajID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
