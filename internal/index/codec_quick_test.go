package index

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mstsearch/internal/geom"
	"mstsearch/internal/storage"
	"mstsearch/internal/trajectory"
)

// Property: encode→decode is the identity for arbitrary well-formed nodes.
func TestNodeCodecRoundTripQuick(t *testing.T) {
	f := func(seed int64, leaf bool, prev, next uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		n := &Node{
			Page:     storage.PageID(rng.Intn(1000)),
			Leaf:     leaf,
			PrevLeaf: storage.PageID(prev),
			NextLeaf: storage.PageID(next),
		}
		if leaf {
			for i := 0; i < 1+rng.Intn(MaxLeafEntries(4096)); i++ {
				a := geom.STPoint{X: rng.NormFloat64() * 1e6, Y: rng.NormFloat64() * 1e6, T: rng.NormFloat64() * 1e6}
				b := geom.STPoint{X: rng.NormFloat64() * 1e6, Y: rng.NormFloat64() * 1e6, T: rng.NormFloat64() * 1e6}
				// Well-formed segments respect the A.T <= B.T invariant
				// (the decoder rejects anything else as corruption).
				if b.T < a.T {
					a, b = b, a
				}
				n.Leaves = append(n.Leaves, LeafEntry{
					TrajID: trajectory.ID(rng.Uint32()),
					SeqNo:  rng.Uint32(),
					Seg:    geom.Segment{A: a, B: b},
				})
			}
		} else {
			for i := 0; i < 1+rng.Intn(MaxChildEntries(4096)); i++ {
				x1, x2 := rng.NormFloat64(), rng.NormFloat64()
				y1, y2 := rng.NormFloat64(), rng.NormFloat64()
				t1, t2 := rng.NormFloat64(), rng.NormFloat64()
				n.Children = append(n.Children, ChildEntry{
					MBB: geom.MBB{
						MinX: math.Min(x1, x2), MinY: math.Min(y1, y2), MinT: math.Min(t1, t2),
						MaxX: math.Max(x1, x2), MaxY: math.Max(y1, y2), MaxT: math.Max(t1, t2),
					},
					Page: storage.PageID(rng.Uint32()),
				})
			}
		}
		buf, err := EncodeNode(n, 4096)
		if err != nil {
			return false
		}
		got, err := DecodeNode(n.Page, buf)
		if err != nil {
			return false
		}
		if got.Leaf != n.Leaf || got.PrevLeaf != n.PrevLeaf || got.NextLeaf != n.NextLeaf {
			return false
		}
		if got.Len() != n.Len() {
			return false
		}
		for i := range n.Leaves {
			if got.Leaves[i] != n.Leaves[i] {
				return false
			}
		}
		for i := range n.Children {
			if got.Children[i] != n.Children[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Robustness: decoding arbitrary page bytes must never panic — it returns
// either an error or some node, but stays in control.
func TestDecodeNodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		size := rng.Intn(4097)
		buf := make([]byte, size)
		rng.Read(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("DecodeNode panicked on %d random bytes: %v", size, r)
				}
			}()
			_, _ = DecodeNode(0, buf)
		}()
	}
}
