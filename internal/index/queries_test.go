package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mstsearch/internal/geom"
	"mstsearch/internal/storage"
	"mstsearch/internal/trajectory"
)

// memTree is a minimal in-memory Tree used to test the generic queries
// without depending on the concrete tree packages (which live above this
// one in the import graph).
type memTree struct {
	nodes map[storage.PageID]*Node
	root  storage.PageID
	h     int
}

func (m *memTree) Root() storage.PageID { return m.root }
func (m *memTree) RootMBB() geom.MBB {
	if m.root == storage.NilPage {
		return geom.EmptyMBB()
	}
	return m.nodes[m.root].MBB()
}
func (m *memTree) ReadNode(id storage.PageID) (*Node, error) { return m.nodes[id], nil }
func (m *memTree) Height() int                               { return m.h }
func (m *memTree) NumNodes() int                             { return len(m.nodes) }

// buildMemTree packs entries into leaves of the given size under one root.
func buildMemTree(entries []LeafEntry, leafSize int) *memTree {
	m := &memTree{nodes: map[storage.PageID]*Node{}}
	var next storage.PageID
	root := &Node{Page: next}
	next++
	for lo := 0; lo < len(entries); lo += leafSize {
		hi := lo + leafSize
		if hi > len(entries) {
			hi = len(entries)
		}
		leaf := &Node{Page: next, Leaf: true, PrevLeaf: storage.NilPage, NextLeaf: storage.NilPage}
		next++
		leaf.Leaves = append(leaf.Leaves, entries[lo:hi]...)
		m.nodes[leaf.Page] = leaf
		root.Children = append(root.Children, ChildEntry{MBB: leaf.MBB(), Page: leaf.Page})
	}
	m.nodes[root.Page] = root
	m.root = root.Page
	m.h = 2
	return m
}

func randEntries(rng *rand.Rand, n int) []LeafEntry {
	out := make([]LeafEntry, n)
	for i := range out {
		t0 := rng.Float64() * 100
		x, y := rng.Float64()*100, rng.Float64()*100
		out[i] = LeafEntry{
			TrajID: trajectory.ID(i/10 + 1),
			SeqNo:  uint32(i % 10),
			Seg: geom.Segment{
				A: geom.STPoint{X: x, Y: y, T: t0},
				B: geom.STPoint{X: x + rng.NormFloat64(), Y: y + rng.NormFloat64(), T: t0 + 1 + rng.Float64()},
			},
		}
	}
	return out
}

func TestGenericRangeSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	entries := randEntries(rng, 500)
	tree := buildMemTree(entries, 16)
	for q := 0; q < 40; q++ {
		box := geom.MBB{MinX: rng.Float64() * 80, MinY: rng.Float64() * 80, MinT: rng.Float64() * 80}
		box.MaxX = box.MinX + 25
		box.MaxY = box.MinY + 25
		box.MaxT = box.MinT + 25
		got, err := RangeSearch(tree, box)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, e := range entries {
			if e.MBB().Intersects(box) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("query %d: got %d, want %d", q, len(got), want)
		}
	}
}

func TestGenericRangeSearchEmpty(t *testing.T) {
	m := &memTree{nodes: map[storage.PageID]*Node{}, root: storage.NilPage}
	got, err := RangeSearch(m, geom.MBB{MaxX: 1, MaxY: 1, MaxT: 1})
	if err != nil || got != nil {
		t.Fatalf("empty tree range: %v, %v", got, err)
	}
}

func TestNearestAtMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	entries := randEntries(rng, 600)
	tree := buildMemTree(entries, 16)
	for q := 0; q < 40; q++ {
		p := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		tt := rng.Float64() * 100
		k := 1 + rng.Intn(4)
		got, err := NearestAt(tree, p, tt, k)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: best distance per object among segments alive at tt.
		best := map[trajectory.ID]float64{}
		for _, e := range entries {
			if tt < e.Seg.A.T || tt > e.Seg.B.T {
				continue
			}
			d := e.Seg.At(tt).Spatial().Dist(p)
			if cur, ok := best[e.TrajID]; !ok || d < cur {
				best[e.TrajID] = d
			}
		}
		type pair struct {
			id trajectory.ID
			d  float64
		}
		var want []pair
		for id, d := range best {
			want = append(want, pair{id, d})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].d != want[j].d {
				return want[i].d < want[j].d
			}
			return want[i].id < want[j].id
		})
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d results, want %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i].TrajID != want[i].id || math.Abs(got[i].Dist-want[i].d) > 1e-9 {
				t.Fatalf("query %d rank %d: got %+v, want %+v", q, i, got[i], want[i])
			}
		}
	}
}

func TestNearestAtNoObjectAlive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	entries := randEntries(rng, 50)
	tree := buildMemTree(entries, 16)
	got, err := NearestAt(tree, geom.Point{}, 1e9, 2)
	if err != nil || len(got) != 0 {
		t.Fatalf("no-alive query: %v, %v", got, err)
	}
}
