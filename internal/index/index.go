// Package index defines the node model shared by every R-tree-like
// structure in this library (the 3D R-tree and the TB-tree), the on-page
// node codec, and the Tree interface the k-MST search algorithm is written
// against. Because BFMSTSearch only needs best-first traversal over nodes
// with 3D MBBs and leaf-level trajectory segments, it runs unchanged on any
// structure implementing Tree — the property the paper emphasizes
// ("does not require any dedicated index structure").
package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"mstsearch/internal/debugassert"
	"mstsearch/internal/geom"
	"mstsearch/internal/storage"
	"mstsearch/internal/trajectory"
)

// LeafEntry is one indexed trajectory line segment: the motion of object
// TrajID between samples SeqNo and SeqNo+1.
type LeafEntry struct {
	TrajID trajectory.ID
	SeqNo  uint32
	Seg    geom.Segment
}

// MBB returns the entry's tight bounding box.
func (e LeafEntry) MBB() geom.MBB { return geom.MBBOfSegment(e.Seg) }

// ChildEntry is an internal-node entry: the bound of a subtree and the
// page holding its root.
type ChildEntry struct {
	MBB  geom.MBB
	Page storage.PageID
}

// Node is the in-memory form of one tree node. Exactly one of Leaves /
// Children is used, per Leaf. PrevLeaf/NextLeaf implement the TB-tree's
// per-trajectory doubly-linked leaf chain and are NilPage for R-tree
// nodes.
type Node struct {
	Page     storage.PageID
	Leaf     bool
	PrevLeaf storage.PageID
	NextLeaf storage.PageID
	Leaves   []LeafEntry
	Children []ChildEntry
}

// MBB computes the tight bound over the node's entries.
func (n *Node) MBB() geom.MBB {
	b := geom.EmptyMBB()
	if n.Leaf {
		for _, e := range n.Leaves {
			b = b.Expand(e.MBB())
		}
	} else {
		for _, c := range n.Children {
			b = b.Expand(c.MBB)
		}
	}
	return b
}

// Len returns the number of entries in the node.
func (n *Node) Len() int {
	if n.Leaf {
		return len(n.Leaves)
	}
	return len(n.Children)
}

// Index is the structure-agnostic read-side interface: what every index
// kind — MBB trees and metric trees alike — exposes to the layers above
// (stats, persistence, cost accounting). Search algorithms downcast to
// the capability interface they need: Tree for MBB best-first k-MST,
// MetricTree for pivot/radius pruning.
type Index interface {
	// Root returns the root node's page (NilPage for an empty index).
	Root() storage.PageID
	// Height returns the number of levels (1 = root is a leaf; 0 = empty).
	Height() int
	// NumNodes returns the total number of nodes, the denominator of the
	// pruning-power metric.
	NumNodes() int
}

// Tree is the read-side interface the MBB-based k-MST search consumes.
type Tree interface {
	// Root returns the root node's page (NilPage for an empty tree).
	Root() storage.PageID
	// RootMBB returns the bound of the whole tree.
	RootMBB() geom.MBB
	// ReadNode fetches and decodes one node.
	ReadNode(id storage.PageID) (*Node, error)
	// Height returns the number of levels (1 = root is a leaf; 0 = empty).
	Height() int
	// NumNodes returns the total number of nodes, the denominator of the
	// pruning-power metric.
	NumNodes() int
}

// MetricTree is the read-side interface of a metric-space index: same
// page-level accounting as Tree, but nodes carry pivots and covering
// radii instead of raw segments. See metricnode.go for the node model.
type MetricTree interface {
	Index
	// RootMBB returns the aggregate bound of the whole tree.
	RootMBB() geom.MBB
	// ReadMetricNode fetches and decodes one metric node.
	ReadMetricNode(id storage.PageID) (*MetricNode, error)
}

// Node page layout (little endian):
//
//	[0]    flags: bit0 = leaf, bit1 = metric node (see metricnode.go)
//	[1:3]  entry count (uint16)
//	[3:7]  prev leaf page (uint32; TB-tree chains)
//	[7:11] next leaf page (uint32)
//	[11:12] padding
//	[12:]  entries
//
// Leaf entry (56 B):  trajID u32, seqNo u32, ax ay at bx by bt f64
// Child entry (52 B): minx miny mint maxx maxy maxt f64, page u32
const (
	nodeHeaderSize = 12
	leafEntrySize  = 56
	childEntrySize = 52
)

// MaxLeafEntries returns the leaf fan-out for a page size.
func MaxLeafEntries(pageSize int) int { return (pageSize - nodeHeaderSize) / leafEntrySize }

// MaxChildEntries returns the internal fan-out for a page size.
func MaxChildEntries(pageSize int) int { return (pageSize - nodeHeaderSize) / childEntrySize }

// ErrCorruptNode reports an undecodable page.
var ErrCorruptNode = errors.New("index: corrupt node page")

// EncodeNode serializes n into a page-sized buffer.
func EncodeNode(n *Node, pageSize int) ([]byte, error) {
	buf := make([]byte, pageSize)
	var flags byte
	if n.Leaf {
		flags |= 1
	}
	buf[0] = flags
	binary.LittleEndian.PutUint16(buf[1:3], uint16(n.Len()))
	binary.LittleEndian.PutUint32(buf[3:7], uint32(n.PrevLeaf))
	binary.LittleEndian.PutUint32(buf[7:11], uint32(n.NextLeaf))
	off := nodeHeaderSize
	putF := func(v float64) {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	if n.Leaf {
		if len(n.Leaves) > MaxLeafEntries(pageSize) {
			return nil, fmt.Errorf("index: leaf overflow: %d entries", len(n.Leaves))
		}
		for _, e := range n.Leaves {
			if debugassert.Enabled {
				debugassert.Assertf(e.Seg.A.T <= e.Seg.B.T,
					"encoding leaf page %d: segment (traj %d seq %d) violates A.T <= B.T: %v > %v",
					n.Page, e.TrajID, e.SeqNo, e.Seg.A.T, e.Seg.B.T)
			}
			binary.LittleEndian.PutUint32(buf[off:], uint32(e.TrajID))
			off += 4
			binary.LittleEndian.PutUint32(buf[off:], e.SeqNo)
			off += 4
			putF(e.Seg.A.X)
			putF(e.Seg.A.Y)
			putF(e.Seg.A.T)
			putF(e.Seg.B.X)
			putF(e.Seg.B.Y)
			putF(e.Seg.B.T)
		}
	} else {
		if len(n.Children) > MaxChildEntries(pageSize) {
			return nil, fmt.Errorf("index: internal overflow: %d entries", len(n.Children))
		}
		for _, c := range n.Children {
			if debugassert.Enabled {
				debugassert.Assertf(c.MBB.WellFormed(),
					"encoding internal page %d: child (page %d) MBB not well-formed: %+v",
					n.Page, c.Page, c.MBB)
			}
			putF(c.MBB.MinX)
			putF(c.MBB.MinY)
			putF(c.MBB.MinT)
			putF(c.MBB.MaxX)
			putF(c.MBB.MaxY)
			putF(c.MBB.MaxT)
			binary.LittleEndian.PutUint32(buf[off:], uint32(c.Page))
			off += 4
		}
	}
	return buf, nil
}

// DecodeNode parses a node page.
func DecodeNode(page storage.PageID, buf []byte) (*Node, error) {
	if len(buf) < nodeHeaderSize {
		return nil, ErrCorruptNode
	}
	if buf[0]&flagMetric != 0 {
		// Metric pages (bit1) use a different entry layout; decoding one
		// as an MBB node would hand out garbage segments.
		return nil, ErrCorruptNode
	}
	n := &Node{
		Page:     page,
		Leaf:     buf[0]&1 != 0,
		PrevLeaf: storage.PageID(binary.LittleEndian.Uint32(buf[3:7])),
		NextLeaf: storage.PageID(binary.LittleEndian.Uint32(buf[7:11])),
	}
	count := int(binary.LittleEndian.Uint16(buf[1:3]))
	off := nodeHeaderSize
	getF := func() float64 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		return v
	}
	if n.Leaf {
		if nodeHeaderSize+count*leafEntrySize > len(buf) {
			return nil, ErrCorruptNode
		}
		n.Leaves = make([]LeafEntry, count)
		for i := 0; i < count; i++ {
			e := &n.Leaves[i]
			e.TrajID = trajectory.ID(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			e.SeqNo = binary.LittleEndian.Uint32(buf[off:])
			off += 4
			e.Seg.A.X = getF()
			e.Seg.A.Y = getF()
			e.Seg.A.T = getF()
			e.Seg.B.X = getF()
			e.Seg.B.Y = getF()
			e.Seg.B.T = getF()
			// The decoder never hands out entries violating the time
			// order invariant (NaN fails the comparison too).
			if !(e.Seg.A.T <= e.Seg.B.T) {
				return nil, ErrCorruptNode
			}
		}
	} else {
		if nodeHeaderSize+count*childEntrySize > len(buf) {
			return nil, ErrCorruptNode
		}
		n.Children = make([]ChildEntry, count)
		for i := 0; i < count; i++ {
			c := &n.Children[i]
			c.MBB.MinX = getF()
			c.MBB.MinY = getF()
			c.MBB.MinT = getF()
			c.MBB.MaxX = getF()
			c.MBB.MaxY = getF()
			c.MBB.MaxT = getF()
			c.Page = storage.PageID(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			// Malformed child bounds (min > max or NaN) are corruption,
			// not a decodable node.
			if !c.MBB.WellFormed() {
				return nil, ErrCorruptNode
			}
		}
	}
	return n, nil
}

// WriteNode encodes and stores n through the pager.
func WriteNode(p storage.Pager, n *Node) error {
	buf, err := EncodeNode(n, p.PageSize())
	if err != nil {
		return err
	}
	return p.Write(n.Page, buf)
}

// ReadNode fetches and decodes the node at id through the pager.
func ReadNode(p storage.Pager, id storage.PageID) (*Node, error) {
	buf, err := p.Read(id)
	if err != nil {
		return nil, err
	}
	return DecodeNode(id, buf)
}
