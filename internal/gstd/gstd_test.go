package gstd

import (
	"math"
	"testing"
)

func TestGenerateShape(t *testing.T) {
	d := Generate(Config{NumObjects: 50, SamplesPerObject: 101, Seed: 1})
	if d.Len() != 50 {
		t.Fatalf("objects = %d", d.Len())
	}
	if d.NumSegments() != 50*100 {
		t.Fatalf("segments = %d", d.NumSegments())
	}
	for i := range d.Trajs {
		tr := &d.Trajs[i]
		if err := tr.Validate(); err != nil {
			t.Fatalf("trajectory %d invalid: %v", tr.ID, err)
		}
		if tr.StartTime() != 0 || tr.EndTime() != 1 {
			t.Fatalf("trajectory %d spans [%v, %v]", tr.ID, tr.StartTime(), tr.EndTime())
		}
		for _, s := range tr.Samples {
			if s.X < 0 || s.X > 1 || s.Y < 0 || s.Y > 1 {
				t.Fatalf("sample outside unit workspace: %+v", s)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{NumObjects: 5, SamplesPerObject: 50, Seed: 7})
	b := Generate(Config{NumObjects: 5, SamplesPerObject: 50, Seed: 7})
	for i := range a.Trajs {
		for j := range a.Trajs[i].Samples {
			if a.Trajs[i].Samples[j] != b.Trajs[i].Samples[j] {
				t.Fatal("same seed must reproduce the dataset")
			}
		}
	}
	c := Generate(Config{NumObjects: 5, SamplesPerObject: 50, Seed: 8})
	same := true
	for j := range a.Trajs[0].Samples {
		if a.Trajs[0].Samples[j] != c.Trajs[0].Samples[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must differ")
	}
}

func TestGenerateDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.NumObjects != 100 || c.SamplesPerObject != 2001 {
		t.Fatalf("defaults = %+v", c)
	}
	// Table 2 shape: S0100 has 100 objects × ~2000 segments = 200K entries.
	d := Generate(Config{Seed: 1})
	if d.NumSegments() != 100*2000 {
		t.Fatalf("default segments = %d, want 200000", d.NumSegments())
	}
}

func TestObjectsActuallyMove(t *testing.T) {
	d := Generate(Config{NumObjects: 20, SamplesPerObject: 500, Seed: 3})
	for i := range d.Trajs {
		if d.Trajs[i].SpatialLength() < 0.01 {
			t.Fatalf("trajectory %d barely moves: %v", i, d.Trajs[i].SpatialLength())
		}
	}
}

func TestSpeedDistributions(t *testing.T) {
	ln := Generate(Config{NumObjects: 10, SamplesPerObject: 200, Seed: 4})
	nm := Generate(Config{NumObjects: 10, SamplesPerObject: 200, Seed: 4, Speed: Normal, Mu: 1})
	// Both produce movement; lognormal speeds are strictly positive so no
	// trajectory is frozen.
	for i := range ln.Trajs {
		if ln.Trajs[i].SpatialLength() == 0 {
			t.Fatal("lognormal trajectory frozen")
		}
	}
	var totalNm float64
	for i := range nm.Trajs {
		totalNm += nm.Trajs[i].SpatialLength()
	}
	if totalNm == 0 {
		t.Fatal("normal-speed dataset frozen")
	}
}

func TestBounceReflection(t *testing.T) {
	v, h := bounce(-0.25, 0, true)
	if v != 0.25 || h != math.Pi {
		t.Fatalf("bounce(-0.25) = %v, %v", v, h)
	}
	v, h = bounce(1.3, math.Pi/2, false)
	if math.Abs(v-0.7) > 1e-12 || h != -math.Pi/2 {
		t.Fatalf("bounce(1.3) = %v, %v", v, h)
	}
	v, _ = bounce(0.5, 1, true)
	if v != 0.5 {
		t.Fatal("in-range value must pass through")
	}
}
