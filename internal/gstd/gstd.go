// Package gstd reimplements the synthetic moving-object workload the paper
// generates with its GSTD-based custom generator [17] (§5.1): N objects
// sampled ~2000 times each over a bounded workspace, starting from a
// uniform initial distribution, with random headings and speeds ruled by a
// normal or lognormal distribution. The datasets S0100…S1000 of Table 2
// are instances of this generator.
package gstd

import (
	"math"
	"math/rand"

	"mstsearch/internal/trajectory"
)

// SpeedDistribution selects how per-step speeds are drawn.
type SpeedDistribution int

// Supported speed distributions (Table 2 uses Lognormal).
const (
	Lognormal SpeedDistribution = iota
	Normal
)

// Config parameterizes the generator. The workspace is the unit square
// [0,1]² and time spans [0,1], matching GSTD conventions.
type Config struct {
	// NumObjects is the dataset cardinality (e.g. 100 for S0100).
	NumObjects int
	// SamplesPerObject is the number of recorded positions per object
	// (the paper samples each object ~2000 times).
	SamplesPerObject int
	// Speed selects the speed law; Mu/Sigma are its parameters in log
	// space for Lognormal (the paper's Table 2 lists σ = 0.6) or linear
	// space for Normal.
	Speed SpeedDistribution
	// Mu and Sigma parameterize the speed law.
	Mu, Sigma float64
	// SpeedScale converts the drawn speed into workspace units per time
	// unit; with ~2000 steps over a unit duration a scale of ~0.5 makes
	// objects traverse a realistic fraction of the workspace.
	SpeedScale float64
	// HeadingJitter is the standard deviation (radians) of the per-step
	// random heading change; the paper's headings are random.
	HeadingJitter float64
	// Seed makes generation deterministic.
	Seed int64
}

// Defaults fills zero fields with the values used throughout the
// experimental study.
func (c Config) Defaults() Config {
	if c.NumObjects == 0 {
		c.NumObjects = 100
	}
	if c.SamplesPerObject == 0 {
		c.SamplesPerObject = 2001 // ≈2000 segments per object, as in Table 2
	}
	if c.Sigma == 0 {
		c.Sigma = 0.6
	}
	if c.SpeedScale == 0 {
		c.SpeedScale = 0.5
	}
	if c.HeadingJitter == 0 {
		c.HeadingJitter = 0.35
	}
	return c
}

// Generate produces the dataset. Objects are assigned IDs 1..NumObjects;
// every trajectory spans exactly [0, 1] with uniform sampling steps, so
// all trajectories are co-temporal (the assumption under which DISSIM and
// the query workloads of Table 3 operate).
func Generate(c Config) *trajectory.Dataset {
	c = c.Defaults()
	rng := rand.New(rand.NewSource(c.Seed))
	trajs := make([]trajectory.Trajectory, c.NumObjects)
	dt := 1.0 / float64(c.SamplesPerObject-1)
	for i := range trajs {
		tr := trajectory.Trajectory{
			ID:      trajectory.ID(i + 1),
			Samples: make([]trajectory.Sample, c.SamplesPerObject),
		}
		x, y := rng.Float64(), rng.Float64()
		heading := rng.Float64() * 2 * math.Pi
		for j := 0; j < c.SamplesPerObject; j++ {
			tr.Samples[j] = trajectory.Sample{X: x, Y: y, T: float64(j) * dt}
			if j == c.SamplesPerObject-1 {
				break
			}
			heading += rng.NormFloat64() * c.HeadingJitter
			v := c.drawSpeed(rng) * c.SpeedScale
			x += math.Cos(heading) * v * dt
			y += math.Sin(heading) * v * dt
			x, heading = bounce(x, heading, true)
			y, heading = bounce(y, heading, false)
		}
		trajs[i] = tr
	}
	d, err := trajectory.NewDataset(trajs)
	if err != nil {
		panic("gstd: impossible duplicate id: " + err.Error())
	}
	return d
}

func (c Config) drawSpeed(rng *rand.Rand) float64 {
	switch c.Speed {
	case Normal:
		v := c.Mu + rng.NormFloat64()*c.Sigma
		if v < 0 {
			return 0
		}
		return v
	default:
		return math.Exp(c.Mu + rng.NormFloat64()*c.Sigma)
	}
}

// bounce reflects a coordinate back into [0, 1], mirroring the heading
// component. The axis flag selects which heading component to mirror.
func bounce(v, heading float64, xAxis bool) (float64, float64) {
	for v < 0 || v > 1 {
		if v < 0 {
			v = -v
		} else {
			v = 2 - v
		}
		if xAxis {
			heading = math.Pi - heading
		} else {
			heading = -heading
		}
	}
	return v, heading
}
