// Package debugassert is the sanitizer-style runtime assertion layer.
//
// Assertions are compiled out of release builds: Enabled is a build-tag
// constant, so `if debugassert.Enabled { ... }` blocks are dead-code
// eliminated unless the binary is built with `-tags debugassert`. Hot
// paths guard their checks that way; cold paths may call Assertf
// unconditionally (it is a no-op when disabled).
//
// The checks wired through the codebase enforce the paper's core
// invariants (see DESIGN.md "Invariant catalog"):
//
//   - MBB validity: min <= max on all three axes of every bounding box
//     crossing the index codec;
//   - best-first monotonicity: MINDIST of popped heap entries never
//     decreases during an incremental search (Theorem 2's correctness
//     hinges on it);
//   - pruning-bound ordering: OPTDISSIM <= DISSIM <= PESDISSIM, i.e.
//     every approximate dissimilarity interval has non-negative error
//     and contains the exact value when both are computed;
//   - buffer integrity: clean frames evicted from the buffer pool still
//     match the inner pager's checksum.
//
// CI runs the whole test suite with the tag enabled (the "debugassert"
// job), so a regression that violates an invariant fails loudly instead
// of silently returning wrong query results.
package debugassert

import "fmt"

// Assertf panics with a formatted message when the condition is false
// and assertions are enabled. It is a no-op in release builds; guard
// expensive condition computations with `if debugassert.Enabled`.
func Assertf(cond bool, format string, args ...any) {
	if Enabled && !cond {
		panic("debugassert: " + fmt.Sprintf(format, args...))
	}
}
