package debugassert

import "testing"

func TestAssertf(t *testing.T) {
	// True conditions never panic regardless of build tag.
	Assertf(true, "should not fire")

	if !Enabled {
		// Release build: false conditions are no-ops too.
		Assertf(false, "compiled out")
		return
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Assertf(false) did not panic with assertions enabled")
		}
		if s, ok := r.(string); !ok || s != "debugassert: boom 42" {
			t.Fatalf("panic value = %v, want %q", r, "debugassert: boom 42")
		}
	}()
	Assertf(false, "boom %d", 42)
}
