//go:build !debugassert

package debugassert

// Enabled reports whether sanitizer assertions are compiled in. Release
// builds have them off; guarded blocks are eliminated at compile time.
const Enabled = false
