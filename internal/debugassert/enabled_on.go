//go:build debugassert

package debugassert

// Enabled reports whether sanitizer assertions are compiled in. This
// build has them on (-tags debugassert).
const Enabled = true
