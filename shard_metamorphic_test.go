package mstsearch_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	mstsearch "mstsearch"
	"mstsearch/internal/gstd"
	"mstsearch/internal/shard"
)

// Metamorphic properties of the scatter-gather coordinator: relations
// that must hold between related cluster configurations without knowing
// any ground-truth answer.

// TestMetamorphicResharding: the answer to a query is an invariant of the
// partitioning. Moving the same fleet between shard counts, placement
// policies, and scatter widths must not change one bit of any response.
func TestMetamorphicResharding(t *testing.T) {
	trajs := gstd.Generate(gstd.Config{NumObjects: 32, SamplesPerObject: 61, Seed: 13}).Trajs
	rng := rand.New(rand.NewSource(13))

	// Pre-draw a fixed workload, then replay it through every shape.
	type work struct {
		q      *mstsearch.Trajectory
		t1, t2 float64
		k      int
	}
	const queries = 8
	workload := make([]work, queries)
	for i := range workload {
		q := mstsearch.OracleQueryTraj(rng, 41)
		t1, t2 := mstsearch.OracleQueryWindow(rng)
		workload[i] = work{q: q, t1: t1, t2: t2, k: 1 + rng.Intn(5)}
	}

	var ref [][]mstsearch.Result // answers of the first shape
	for _, shape := range []struct {
		n       int
		place   shard.Placement
		workers int
	}{
		{1, shard.HashPlacement{}, 1},
		{2, shard.HashPlacement{}, 1},
		{5, shard.HashPlacement{}, 2},
		{5, shard.SpatialPlacement{}, 5},
		{3, shard.SpatialPlacement{}, 0},
	} {
		label := fmt.Sprintf("N%d/%s/W%d", shape.n, shape.place.Name(), shape.workers)
		c := buildCluster(t, mstsearch.RTree3D, shape.n, shape.place, shard.Options{Workers: shape.workers}, trajs)
		for i, w := range workload {
			resp, err := c.Query(context.Background(), mstsearch.Request{
				Q: w.q, Interval: mstsearch.Interval{T1: w.t1, T2: w.t2}, K: w.k,
				Options: oracleOptions(),
			})
			if err != nil {
				t.Fatalf("%s iter %d: %v", label, i, err)
			}
			if ref == nil || len(ref) <= i {
				ref = append(ref, resp.Results)
				continue
			}
			mstsearch.CheckBitIdentical(t, label, i, ref[i], resp.Results)
		}
	}
}

// TestMetamorphicPruneMonotonic: with a fixed scatter width, shrinking k
// can only tighten the global k-th pessimistic bound, so the number of
// shards the coordinator prunes never decreases as k shrinks.
func TestMetamorphicPruneMonotonic(t *testing.T) {
	// The clumped fleet from TestShardPruning: spatial placement gives the
	// coordinator real pruning opportunities to vary with k.
	rng := rand.New(rand.NewSource(17))
	var trajs []mstsearch.Trajectory
	const clumps, perClump, samples = 6, 6, 41
	for s := 0; s < clumps; s++ {
		cx := (float64(s) + 0.5) / clumps
		for j := 0; j < perClump; j++ {
			tr := mstsearch.Trajectory{ID: mstsearch.ID(s*perClump + j + 1), Samples: make([]mstsearch.Sample, samples)}
			x, y := cx+rng.NormFloat64()*0.01, rng.Float64()
			for i := 0; i < samples; i++ {
				tr.Samples[i] = mstsearch.Sample{X: x, Y: y, T: float64(i) / float64(samples-1)}
				x += rng.NormFloat64() * 0.005
				y += rng.NormFloat64() * 0.01
			}
			trajs = append(trajs, tr)
		}
	}
	c := buildCluster(t, mstsearch.RTree3D, clumps, shard.SpatialPlacement{}, shard.Options{Workers: 1}, trajs)

	sawPruning := false
	for iter := 0; iter < 8; iter++ {
		q := trajs[rng.Intn(len(trajs))].Clone()
		q.ID = 0
		prev := -1
		for _, k := range []int{12, 8, 5, 3, 2, 1} { // k shrinking
			_, qs, err := c.QueryShards(context.Background(), mstsearch.Request{
				Q: &q, Interval: mstsearch.Interval{T1: 0.1, T2: 0.9}, K: k,
				Options: oracleOptions(),
			})
			if err != nil {
				t.Fatalf("iter %d k=%d: %v", iter, k, err)
			}
			if prev >= 0 && qs.Pruned < prev {
				t.Fatalf("iter %d: pruned count decreased from %d to %d as k shrank to %d", iter, prev, qs.Pruned, k)
			}
			prev = qs.Pruned
			if qs.Pruned > 0 {
				sawPruning = true
			}
		}
	}
	if !sawPruning {
		t.Fatal("workload never pruned a shard; the monotonicity check was vacuous")
	}
}

// TestMetamorphicDegradedParity: a budgeted cluster query must degrade
// exactly like the single DB — Stats.Degraded propagates, results that
// can no longer be certified lose their flag on both sides identically,
// and the merged response never silently presents best-effort answers as
// exact.
func TestMetamorphicDegradedParity(t *testing.T) {
	trajs := gstd.Generate(gstd.Config{NumObjects: 40, SamplesPerObject: 81, Seed: 19}).Trajs
	single, err := mstsearch.NewDB(mstsearch.RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}
	c := buildCluster(t, mstsearch.RTree3D, 4, shard.HashPlacement{}, shard.Options{Workers: 1}, trajs)
	rng := rand.New(rand.NewSource(19))

	sawDegraded, sawUncertified := false, false
	for iter := 0; iter < 12; iter++ {
		q := mstsearch.OracleQueryTraj(rng, 61)
		t1, t2 := mstsearch.OracleQueryWindow(rng)
		opts := oracleOptions()
		opts.MaxNodeAccesses = 2 + rng.Intn(6) // tight: most searches degrade
		req := mstsearch.Request{
			Q: q, Interval: mstsearch.Interval{T1: t1, T2: t2}, K: 3, Options: opts,
		}
		sresp, serr := single.Query(context.Background(), req)
		if serr != nil {
			t.Fatalf("iter %d single: %v", iter, serr)
		}
		cresp, cerr := c.Query(context.Background(), req)
		if cerr != nil {
			t.Fatalf("iter %d cluster: %v", iter, cerr)
		}
		// The budget is per shard-search, so the cluster may find *more*
		// than the budgeted single DB — but degradation must surface, and
		// no cluster result may claim certification the merge cannot
		// justify against the degraded shards' floors.
		if !sresp.Stats.Degraded {
			t.Fatalf("iter %d: single DB did not degrade under a %d-node budget", iter, opts.MaxNodeAccesses)
		}
		if !cresp.Stats.Degraded {
			t.Fatalf("iter %d: no shard reported degradation under a %d-node budget", iter, opts.MaxNodeAccesses)
		}
		sawDegraded = true
		for j, r := range cresp.Results {
			if r.Certified && r.Dissim+r.Err > cresp.Stats.CertFloor {
				t.Fatalf("iter %d rank %d: certified result %+v above the merged floor %g",
					iter, j, r, cresp.Stats.CertFloor)
			}
			if !r.Certified {
				sawUncertified = true
			}
		}
	}
	if !sawDegraded {
		t.Fatal("budgeted workload never degraded; parity check was vacuous")
	}
	if !sawUncertified {
		t.Fatal("budgeted workload never produced an uncertified result; propagation check was vacuous")
	}
}

// TestMetamorphicQueryMutationInterleave: queries interleaved with Add /
// AppendSample through the cluster agree with a single DB receiving the
// same mutation stream at every step — the routing table and per-shard
// indexes never drift.
func TestMetamorphicQueryMutationInterleave(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base := gstd.Generate(gstd.Config{NumObjects: 12, SamplesPerObject: 41, Seed: 23}).Trajs
	single, err := mstsearch.NewDB(mstsearch.STRTree, base)
	if err != nil {
		t.Fatal(err)
	}
	c := buildCluster(t, mstsearch.STRTree, 3, shard.HashPlacement{}, shard.Options{}, base)
	extra := gstd.Generate(gstd.Config{NumObjects: 30, SamplesPerObject: 41, Seed: 24}).Trajs
	for i := range extra {
		extra[i].ID += 1000 // keep IDs disjoint from the base fleet
	}

	for step := 0; step < len(extra); step++ {
		if err := single.Add(extra[step]); err != nil {
			t.Fatalf("step %d single add: %v", step, err)
		}
		if err := c.Add(extra[step]); err != nil {
			t.Fatalf("step %d cluster add: %v", step, err)
		}
		if step%5 != 0 {
			continue
		}
		q := mstsearch.OracleQueryTraj(rng, 41)
		t1, t2 := mstsearch.OracleQueryWindow(rng)
		req := mstsearch.Request{
			Q: q, Interval: mstsearch.Interval{T1: t1, T2: t2}, K: 5,
			Options: oracleOptions(),
		}
		sresp, err := single.Query(context.Background(), req)
		if err != nil {
			t.Fatalf("step %d single: %v", step, err)
		}
		cresp, err := c.Query(context.Background(), req)
		if err != nil {
			t.Fatalf("step %d cluster: %v", step, err)
		}
		mstsearch.CheckBitIdentical(t, "interleaved", step, sresp.Results, cresp.Results)
	}
	if single.Len() != c.Len() {
		t.Fatalf("stores diverged: single %d trajectories, cluster %d", single.Len(), c.Len())
	}
}
