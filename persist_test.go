package mstsearch

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	trajs := fleet(rng, 20, 40)
	dir := t.TempDir()
	for _, kind := range IndexKinds() {
		db, err := NewDB(kind, trajs)
		if err != nil {
			t.Fatal(err)
		}
		q := trajs[6].Clone()
		q.ID = 0
		want, _, err := db.KMostSimilar(&q, 0, 10, 3)
		if err != nil {
			t.Fatal(err)
		}

		path := filepath.Join(dir, kind.String()+".mstdb")
		if err := db.Save(path); err != nil {
			t.Fatalf("%s: save: %v", kind, err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatalf("%s: load: %v", kind, err)
		}
		if got.Len() != db.Len() || got.NumSegments() != db.NumSegments() {
			t.Fatalf("%s: loaded store differs: %d/%d", kind, got.Len(), got.NumSegments())
		}
		if got.IndexSizeMB() != db.IndexSizeMB() {
			t.Fatalf("%s: loaded index size differs", kind)
		}
		res, _, err := got.KMostSimilar(&q, 0, 10, 3)
		if err != nil {
			t.Fatalf("%s: query after load: %v", kind, err)
		}
		if len(res) != len(want) {
			t.Fatalf("%s: result count differs", kind)
		}
		for i := range want {
			if res[i].TrajID != want[i].TrajID || res[i].Dissim != want[i].Dissim {
				t.Fatalf("%s: rank %d differs after reload: %+v vs %+v",
					kind, i, res[i], want[i])
			}
		}
	}
}

func TestLoadedRTreeAcceptsInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	trajs := fleet(rng, 10, 30)
	db, err := NewDB(RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.mstdb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	extra := fleet(rng, 11, 30)[10]
	extra.ID = 99
	if err := got.Add(extra); err != nil {
		t.Fatalf("loaded R-tree DB must accept inserts: %v", err)
	}
	q := extra.Clone()
	q.ID = 0
	res, _, err := got.KMostSimilar(&q, 0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].TrajID != 99 {
		t.Fatalf("post-load insert not searchable: %+v", res)
	}
}

func TestLoadedBundledTreesAreReadOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	trajs := fleet(rng, 5, 20)
	for _, kind := range []IndexKind{TBTree, STRTree} {
		db, err := NewDB(kind, trajs)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "db.mstdb")
		if err := db.Save(path); err != nil {
			t.Fatal(err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		extra := trajs[0].Clone()
		extra.ID = 42
		if err := got.Add(extra); err == nil {
			t.Fatalf("%s: loaded DB must reject inserts", kind)
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	trajs := fleet(rng, 5, 20)
	db, err := NewDB(RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "db.mstdb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the middle: CRC must catch it.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0xFF
	badPath := filepath.Join(dir, "bad.mstdb")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(badPath); !errors.Is(err, ErrSnapshotCRC) && !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("corrupted snapshot: got %v", err)
	}

	// Truncated file.
	if err := os.WriteFile(badPath, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(badPath); err == nil {
		t.Fatal("truncated snapshot must fail")
	}

	// Wrong magic.
	junk := append([]byte("NOTADB"), raw[6:]...)
	if err := os.WriteFile(badPath, junk, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(badPath); !errors.Is(err, ErrBadSnapshot) && !errors.Is(err, ErrSnapshotCRC) {
		t.Fatalf("junk magic: got %v", err)
	}

	// Missing file.
	if _, err := Load(filepath.Join(dir, "nope.mstdb")); err == nil {
		t.Fatal("missing file must fail")
	}
}

// snapshotFixture saves a small database and returns the raw snapshot.
func snapshotFixture(t *testing.T) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(27))
	trajs := fleet(rng, 3, 8)
	db, err := NewDB(RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.mstdb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// loadBytes writes raw to a file and Loads it, converting any panic into
// a test failure: corrupt input must always come back as a typed error.
func loadBytes(t *testing.T, dir string, raw []byte) (err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Load panicked on corrupt input: %v", r)
		}
	}()
	path := filepath.Join(dir, "cut.mstdb")
	if werr := os.WriteFile(path, raw, 0o644); werr != nil {
		t.Fatal(werr)
	}
	_, err = Load(path)
	return err
}

// typedSnapshotError reports whether err is one of Load's documented
// failure modes.
func typedSnapshotError(err error) bool {
	return errors.Is(err, ErrBadSnapshot) ||
		errors.Is(err, ErrSnapshotVersion) ||
		errors.Is(err, ErrSnapshotCRC)
}

// TestLoadTruncationEverywhere cuts the snapshot at every field boundary
// of the format — and at every byte of the header region for good
// measure. Each cut must yield a typed error, never a panic and never a
// silently partial database.
func TestLoadTruncationEverywhere(t *testing.T) {
	raw := snapshotFixture(t)
	dir := t.TempDir()

	cuts := map[int]bool{}
	// Every byte through the fixed header (magic, version, kind, index
	// metadata, vmax, page geometry) and a little beyond.
	for i := 0; i <= 64 && i < len(raw); i++ {
		cuts[i] = true
	}
	// Page boundaries and mid-page cuts.
	const hdr = 6 + 2 + 1 + 12 + 8 + 8 // magic..numPages
	for off := hdr; off < len(raw); off += 4096 {
		cuts[off] = true
		cuts[off+2048] = true
	}
	// The trailing CRC region and the byte before it.
	for i := 1; i <= 5; i++ {
		cuts[len(raw)-i] = true
	}

	for cut := range cuts {
		if cut >= len(raw) {
			continue
		}
		err := loadBytes(t, dir, raw[:cut])
		if err == nil {
			t.Fatalf("truncation at %d of %d loaded successfully", cut, len(raw))
		}
		if !typedSnapshotError(err) {
			t.Fatalf("truncation at %d: untyped error %v", cut, err)
		}
	}
}

// TestLoadFlippedByteAnywhere flips every single byte of the snapshot in
// turn: each corruption must surface as a typed error — the trailing CRC
// guarantees nothing slips through — and must never panic.
func TestLoadFlippedByteAnywhere(t *testing.T) {
	raw := snapshotFixture(t)
	dir := t.TempDir()

	bad := make([]byte, len(raw))
	for off := 0; off < len(raw); off++ {
		copy(bad, raw)
		bad[off] ^= 0xFF
		err := loadBytes(t, dir, bad)
		if err == nil {
			t.Fatalf("flipped byte at %d of %d loaded successfully", off, len(raw))
		}
		if !typedSnapshotError(err) {
			t.Fatalf("flipped byte at %d: untyped error %v", off, err)
		}
	}
}

func TestSaveIsAtomic(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	trajs := fleet(rng, 5, 20)
	db, err := NewDB(RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "db.mstdb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("temp files must not survive a successful save: %v", leftovers)
	}
	// Saving over an existing snapshot works and stays loadable.
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsFutureVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	trajs := fleet(rng, 3, 10)
	db, err := NewDB(RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "db.mstdb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Bump the version field (bytes 6-7, little endian) and fix the CRC by
	// not fixing it — either the version check or the CRC must reject it.
	raw[6] = 0xFF
	bad := filepath.Join(dir, "future.mstdb")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(bad)
	if !errors.Is(err, ErrSnapshotVersion) && !errors.Is(err, ErrSnapshotCRC) {
		t.Fatalf("future version: got %v", err)
	}
}

// patchSnapshot copies a snapshot with one byte rewritten and the
// trailing CRC recomputed, so the corruption reaches the semantic check
// it targets instead of stopping at the checksum gate.
func patchSnapshot(t *testing.T, src, dst string, off int64, b byte) {
	t.Helper()
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	raw[off] = b
	sum := crc32.ChecksumIEEE(raw[:len(raw)-4])
	binary.LittleEndian.PutUint32(raw[len(raw)-4:], sum)
	if err := os.WriteFile(dst, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLoadVersionMismatchReachesCheck pins the typed error for a
// future-versioned snapshot whose checksum is valid: the version check
// itself must reject it, not the CRC gate.
func TestLoadVersionMismatchReachesCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	db, err := NewDB(RTree3D, fleet(rng, 3, 10))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "db.mstdb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	// Version is the u16 at bytes 6-7, after the 6-byte magic.
	bad := filepath.Join(dir, "future.mstdb")
	patchSnapshot(t, path, bad, 6, 99)
	if _, err := Load(bad); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("future version with valid CRC: got %v, want ErrSnapshotVersion", err)
	}
}

// TestLoadKindMismatchReachesCheck pins the typed error for a snapshot
// naming an index kind this build does not know, with a valid checksum.
func TestLoadKindMismatchReachesCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	db, err := NewDB(RTree3D, fleet(rng, 3, 10))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "db.mstdb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	// Kind is the u8 at byte 8, after magic and version.
	bad := filepath.Join(dir, "alien.mstdb")
	patchSnapshot(t, path, bad, 8, 9)
	_, err = Load(bad)
	if !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("unknown kind with valid CRC: got %v, want ErrBadSnapshot", err)
	}
	if errors.Is(err, ErrSnapshotCRC) {
		t.Fatalf("unknown kind must be caught before the CRC gate: %v", err)
	}
}

// TestSaveFailureLeavesNoTempFile forces the page-read path inside Save
// to fail and verifies the error-path contract: the temp file is gone,
// the original snapshot is untouched, and the first error is reported.
func TestSaveFailureLeavesNoTempFile(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	db, err := NewDB(RTree3D, fleet(rng, 4, 10))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "db.mstdb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	root := db.indexMeta().Root
	if err := db.file.CorruptPage(root, 3); err != nil {
		t.Fatal(err)
	}
	var pc ErrPageCorrupt
	if err := db.Save(path); !errors.As(err, &pc) {
		t.Fatalf("save over corrupt pages: got %v, want ErrPageCorrupt", err)
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("failed save left temp files: %v", leftovers)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed save modified the existing snapshot")
	}
}
