module mstsearch

go 1.22
