package mstsearch_test

import (
	"context"
	"fmt"

	"mstsearch"
)

// square builds a deterministic little fleet: three objects moving along
// parallel lines during [0, 10].
func square() []mstsearch.Trajectory {
	mk := func(id mstsearch.ID, y float64) mstsearch.Trajectory {
		tr := mstsearch.Trajectory{ID: id}
		for i := 0; i <= 10; i++ {
			tr.Samples = append(tr.Samples, mstsearch.Sample{
				X: float64(i), Y: y, T: float64(i),
			})
		}
		return tr
	}
	return []mstsearch.Trajectory{mk(1, 0), mk(2, 2), mk(3, 50)}
}

func ExampleDB_Query() {
	db, _ := mstsearch.NewDB(mstsearch.TBTree, square())
	// Query: the course of object 1, shifted up by 0.5.
	q := mstsearch.Trajectory{ID: 0}
	for i := 0; i <= 10; i++ {
		q.Samples = append(q.Samples, mstsearch.Sample{
			X: float64(i), Y: 0.5, T: float64(i),
		})
	}
	resp, _ := db.Query(context.Background(), mstsearch.Request{
		Q:        &q,
		Interval: mstsearch.Interval{T1: 0, T2: 10},
		K:        2,
		Options:  mstsearch.DefaultOptions(),
	})
	for i, r := range resp.Results {
		fmt.Printf("%d. trajectory %d DISSIM %.1f\n", i+1, r.TrajID, r.Dissim)
	}
	fmt.Printf("certified: %t\n", resp.Results[0].Certified)
	// Output:
	// 1. trajectory 1 DISSIM 5.0
	// 2. trajectory 2 DISSIM 15.0
	// certified: true
}

func ExampleDB_Explain() {
	db, _ := mstsearch.NewDB(mstsearch.RTree3D, square())
	q := square()[0]
	q.ID = 0
	rep, _ := db.Explain(context.Background(), mstsearch.Request{
		Q:        &q,
		Interval: mstsearch.Interval{T1: 0, T2: 10},
		K:        2,
		Options:  mstsearch.DefaultOptions(),
	})
	// rep.String() renders the full EXPLAIN transcript; individual fields
	// support programmatic checks like these.
	fmt.Printf("store: %d trajectories, %d segments\n", rep.Trajectories, rep.Segments)
	fmt.Printf("nodes accessed: %d of %d\n", rep.Stats.NodesAccessed, rep.Stats.TotalNodes)
	fmt.Printf("trace reconciles with stats: %t\n",
		rep.Trace.ByKind[mstsearch.EventNodeVisit] == rep.Stats.NodesAccessed)
	fmt.Printf("results: %d\n", len(rep.Results))
	// Output:
	// store: 3 trajectories, 30 segments
	// nodes accessed: 1 of 1
	// trace reconciles with stats: true
	// results: 2
}

func ExampleDissimilarity() {
	a := mstsearch.Trajectory{ID: 1, Samples: []mstsearch.Sample{
		{X: 0, Y: 0, T: 0}, {X: 10, Y: 0, T: 10},
	}}
	// Same course sampled differently, at constant distance 3.
	b := mstsearch.Trajectory{ID: 2, Samples: []mstsearch.Sample{
		{X: 0, Y: 3, T: 0}, {X: 5, Y: 3, T: 5}, {X: 10, Y: 3, T: 10},
	}}
	d, _ := mstsearch.Dissimilarity(&a, &b, 0, 10)
	fmt.Printf("DISSIM = %.0f\n", d) // 3 units of distance × 10 time units
	// Output:
	// DISSIM = 30
}

func ExampleDB_Topology() {
	db, _ := mstsearch.NewDB(mstsearch.RTree3D, square())
	// Region containing the first two courses, queried over the full span.
	rels, _ := db.Topology(context.Background(),
		mstsearch.Window{MinX: -1, MinY: -1, MaxX: 11, MaxY: 3},
		mstsearch.Interval{T1: 0, T2: 10})
	for _, r := range rels {
		fmt.Printf("trajectory %d: %s\n", r.TrajID, r.Relation)
	}
	// Output:
	// trajectory 1: inside
	// trajectory 2: inside
}

func ExampleCompressTDTR() {
	tr := mstsearch.Trajectory{ID: 1}
	for i := 0; i <= 100; i++ {
		tr.Samples = append(tr.Samples, mstsearch.Sample{
			X: float64(i), Y: 0, T: float64(i), // a straight line
		})
	}
	c := mstsearch.CompressTDTR(&tr, 0.01)
	fmt.Printf("%d -> %d samples\n", len(tr.Samples), len(c.Samples))
	// Output:
	// 101 -> 2 samples
}
