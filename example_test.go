package mstsearch_test

import (
	"fmt"

	"mstsearch"
)

// square builds a deterministic little fleet: three objects moving along
// parallel lines during [0, 10].
func square() []mstsearch.Trajectory {
	mk := func(id mstsearch.ID, y float64) mstsearch.Trajectory {
		tr := mstsearch.Trajectory{ID: id}
		for i := 0; i <= 10; i++ {
			tr.Samples = append(tr.Samples, mstsearch.Sample{
				X: float64(i), Y: y, T: float64(i),
			})
		}
		return tr
	}
	return []mstsearch.Trajectory{mk(1, 0), mk(2, 2), mk(3, 50)}
}

func ExampleDB_KMostSimilar() {
	db, _ := mstsearch.NewDB(mstsearch.TBTree, square())
	// Query: the course of object 1, shifted up by 0.5.
	q := mstsearch.Trajectory{ID: 0}
	for i := 0; i <= 10; i++ {
		q.Samples = append(q.Samples, mstsearch.Sample{
			X: float64(i), Y: 0.5, T: float64(i),
		})
	}
	results, _, _ := db.KMostSimilar(&q, 0, 10, 2)
	for i, r := range results {
		fmt.Printf("%d. trajectory %d DISSIM %.1f\n", i+1, r.TrajID, r.Dissim)
	}
	// Output:
	// 1. trajectory 1 DISSIM 5.0
	// 2. trajectory 2 DISSIM 15.0
}

func ExampleDissimilarity() {
	a := mstsearch.Trajectory{ID: 1, Samples: []mstsearch.Sample{
		{X: 0, Y: 0, T: 0}, {X: 10, Y: 0, T: 10},
	}}
	// Same course sampled differently, at constant distance 3.
	b := mstsearch.Trajectory{ID: 2, Samples: []mstsearch.Sample{
		{X: 0, Y: 3, T: 0}, {X: 5, Y: 3, T: 5}, {X: 10, Y: 3, T: 10},
	}}
	d, _ := mstsearch.Dissimilarity(&a, &b, 0, 10)
	fmt.Printf("DISSIM = %.0f\n", d) // 3 units of distance × 10 time units
	// Output:
	// DISSIM = 30
}

func ExampleDB_TopologyQuery() {
	db, _ := mstsearch.NewDB(mstsearch.RTree3D, square())
	// Region containing the first two courses, queried over the full span.
	rels, _ := db.TopologyQuery(-1, -1, 11, 3, 0, 10)
	for _, r := range rels {
		fmt.Printf("trajectory %d: %s\n", r.TrajID, r.Relation)
	}
	// Output:
	// trajectory 1: inside
	// trajectory 2: inside
}

func ExampleCompressTDTR() {
	tr := mstsearch.Trajectory{ID: 1}
	for i := 0; i <= 100; i++ {
		tr.Samples = append(tr.Samples, mstsearch.Sample{
			X: float64(i), Y: 0, T: float64(i), // a straight line
		})
	}
	c := mstsearch.CompressTDTR(&tr, 0.01)
	fmt.Printf("%d -> %d samples\n", len(tr.Samples), len(c.Samples))
	// Output:
	// 101 -> 2 samples
}
