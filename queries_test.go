package mstsearch

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"mstsearch/internal/testutil"
)

func TestRangeQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	trajs := fleet(rng, 25, 40)
	for _, kind := range []IndexKind{RTree3D, TBTree} {
		db, err := NewDB(kind, trajs)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 20; q++ {
			minX, minY := rng.Float64()*80, rng.Float64()*80
			t1 := rng.Float64() * 8
			hits, err := db.RangeQuery(minX, minY, minX+20, minY+20, t1, t1+2)
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			for i := range trajs {
				tr := &trajs[i]
				for s := 0; s < tr.NumSegments(); s++ {
					seg := tr.Segment(s)
					lo, hi := seg.A.T, seg.B.T
					sMinX, sMaxX := math.Min(seg.A.X, seg.B.X), math.Max(seg.A.X, seg.B.X)
					sMinY, sMaxY := math.Min(seg.A.Y, seg.B.Y), math.Max(seg.A.Y, seg.B.Y)
					if hi >= t1 && lo <= t1+2 &&
						sMaxX >= minX && sMinX <= minX+20 &&
						sMaxY >= minY && sMinY <= minY+20 {
						want++
					}
				}
			}
			if len(hits) != want {
				t.Fatalf("%s query %d: got %d hits, want %d", kind, q, len(hits), want)
			}
		}
	}
}

func TestNearestAtFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trajs := fleet(rng, 30, 30)
	db, err := NewDB(RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}
	// Query at the exact position of object 5 at t=4: object 5 must win
	// with distance ~0.
	p := trajs[4].At(4)
	res, err := db.NearestAt(p.X, p.Y, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].TrajID != 5 || res[0].Dist > 1e-9 {
		t.Fatalf("top neighbour = %+v, want object 5 at 0", res[0])
	}
	if res[0].Dist > res[1].Dist || res[1].Dist > res[2].Dist {
		t.Fatal("neighbours must be sorted by distance")
	}
	// Instant outside every lifespan.
	res, err = db.NearestAt(0, 0, 1e9, 2)
	if err != nil || len(res) != 0 {
		t.Fatalf("no-alive instant: %v, %v", res, err)
	}
}

func TestKMostSimilarRelaxedFacade(t *testing.T) {
	// Object 2 repeats object 1's course 3 time units later over a longer
	// lifespan; a relaxed query with object 1's motion must match object 2
	// near-perfectly despite the shift.
	line := func(id ID, t0, dur float64, n int, yOff float64) Trajectory {
		tr := Trajectory{ID: id}
		for i := 0; i < n; i++ {
			f := float64(i) / float64(n-1)
			tr.Samples = append(tr.Samples, Sample{X: 50 * f, Y: yOff, T: t0 + dur*f})
		}
		return tr
	}
	a := line(1, 0, 10, 11, 0)
	b := line(2, 0, 16, 17, 0)
	// b's motion: stand still 3 units, then drive the course.
	for i := range b.Samples {
		tt := b.Samples[i].T
		switch {
		case tt < 3:
			b.Samples[i].X = 0
		case tt > 13:
			b.Samples[i].X = 50
		default:
			b.Samples[i].X = 50 * (tt - 3) / 10
		}
	}
	c := line(3, 0, 16, 17, 40) // far away
	db, err := NewDB(TBTree, []Trajectory{b, c})
	if err != nil {
		t.Fatal(err)
	}
	q := a.Clone()
	q.ID = 0
	res, err := db.KMostSimilarRelaxed(&q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].TrajID != 2 {
		t.Fatalf("relaxed results = %+v", res)
	}
	if math.Abs(res[0].Offset-3) > 0.05 {
		t.Fatalf("offset = %v, want ≈3", res[0].Offset)
	}
	if res[0].Dissim > 0.01 {
		t.Fatalf("relaxed dissim = %v, want ≈0", res[0].Dissim)
	}
}

func TestConcurrentQueries(t *testing.T) {
	testutil.CheckGoroutines(t)
	rng := rand.New(rand.NewSource(9))
	trajs := fleet(rng, 30, 40)
	db, err := NewDB(RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]Trajectory, 8)
	for i := range queries {
		q := trajs[i].Clone()
		q.ID = 0
		queries[i] = q
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(queries))
	for i := range queries {
		wg.Add(1)
		go func(q Trajectory, want ID) {
			defer wg.Done()
			res, _, err := db.KMostSimilar(&q, 0, 10, 1)
			if err != nil {
				errs <- err
				return
			}
			if len(res) != 1 || res[0].TrajID != want {
				errs <- fmt.Errorf("query for %d returned %+v", want, res)
			}
		}(queries[i], ID(i+1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestEstimateQueryCost(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	trajs := fleet(rng, 40, 60)
	db, err := NewDB(RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}
	q := trajs[3].Clone()
	q.ID = 0
	est1, err := db.EstimateQueryCost(&q, 2, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	est10, err := db.EstimateQueryCost(&q, 2, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if est1.CorridorRadius <= 0 || est1.ExpectedLeafPages < 1 {
		t.Fatalf("degenerate estimate %+v", est1)
	}
	if est10.CorridorRadius < est1.CorridorRadius ||
		est10.ExpectedSegments < est1.ExpectedSegments {
		t.Fatalf("k=10 estimate below k=1: %+v vs %+v", est10, est1)
	}
	if est1.RangeSelectivity <= 0 || est1.RangeSelectivity > 1 {
		t.Fatalf("selectivity out of range: %+v", est1)
	}
}

func TestEstimateRangeCountTracksActual(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	trajs := fleet(rng, 40, 60)
	db, err := NewDB(RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		minX, minY := rng.Float64()*60, rng.Float64()*60
		t1 := rng.Float64() * 5
		est, err := db.EstimateRangeCount(minX, minY, minX+40, minY+40, t1, t1+4)
		if err != nil {
			t.Fatal(err)
		}
		hits, err := db.RangeQuery(minX, minY, minX+40, minY+40, t1, t1+4)
		if err != nil {
			t.Fatal(err)
		}
		truth := float64(len(hits))
		if truth < 100 {
			continue
		}
		if est < truth/4 || est > truth*4 {
			t.Fatalf("query %d: estimate %.0f vs actual %.0f", i, est, truth)
		}
	}
}

func TestTopologyQuery(t *testing.T) {
	mk := func(id ID, pts ...[3]float64) Trajectory {
		tr := Trajectory{ID: id}
		for _, p := range pts {
			tr.Samples = append(tr.Samples, Sample{X: p[0], Y: p[1], T: p[2]})
		}
		return tr
	}
	trajs := []Trajectory{
		mk(1, [3]float64{12, 12, 0}, [3]float64{18, 18, 10}), // inside
		mk(2, [3]float64{0, 15, 0}, [3]float64{40, 15, 10}),  // cross
		mk(3, [3]float64{0, 15, 0}, [3]float64{15, 15, 10}),  // enter
		mk(4, [3]float64{0, 0, 0}, [3]float64{5, 5, 10}),     // disjoint
		mk(5, [3]float64{15, 15, 0}, [3]float64{40, 15, 10}), // leave
	}
	for _, kind := range IndexKinds() {
		db, err := NewDB(kind, trajs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.TopologyQuery(10, 10, 20, 20, 0, 10)
		if err != nil {
			t.Fatal(err)
		}
		want := map[ID]string{1: "inside", 2: "cross", 3: "enter", 5: "leave"}
		if len(res) != len(want) {
			t.Fatalf("%s: %d results: %+v", kind, len(res), res)
		}
		for _, r := range res {
			if want[r.TrajID] != r.Relation {
				t.Fatalf("%s: traj %d = %s, want %s", kind, r.TrajID, r.Relation, want[r.TrajID])
			}
			if r.InsideDuration <= 0 {
				t.Fatalf("%s: traj %d zero inside duration", kind, r.TrajID)
			}
		}
		// The inside trajectory spends the whole window inside.
		if res[0].TrajID != 1 || res[0].InsideDuration < 10-1e-9 {
			t.Fatalf("%s: inside duration = %+v", kind, res[0])
		}
	}
}

func TestWarmBufferCachesAcrossQueries(t *testing.T) {
	testutil.CheckGoroutines(t)
	rng := rand.New(rand.NewSource(55))
	// Large enough that the paper's 10 % buffer policy yields a pool that
	// can actually hold a root-to-leaf path.
	trajs := fleet(rng, 150, 60)
	db, err := NewDB(RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}
	db.EnableWarmBuffer()
	q := trajs[4].Clone()
	q.ID = 0
	res1, s1, err := db.KMostSimilar(&q, 2, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	res2, s2, err := db.KMostSimilar(&q, 2, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res1 {
		if res1[i].TrajID != res2[i].TrajID {
			t.Fatal("warm buffer changed results")
		}
	}
	if s2.PageReads >= s1.PageReads && s1.PageReads > 0 {
		t.Fatalf("second query should hit the warm cache: %d then %d reads",
			s1.PageReads, s2.PageReads)
	}
	// Mutation invalidates the warm pool but keeps correctness.
	extra := fleet(rng, 151, 60)[150]
	extra.ID = 999
	if err := db.Add(extra); err != nil {
		t.Fatal(err)
	}
	q2 := extra.Clone()
	q2.ID = 0
	res3, _, err := db.KMostSimilar(&q2, 0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res3) != 1 || res3[0].TrajID != 999 {
		t.Fatalf("post-mutation query wrong: %+v", res3)
	}
	// Warm pool stays race-free under parallel queries.
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _ = db.KMostSimilar(&q, 2, 6, 1)
		}()
	}
	wg.Wait()
}

func TestKMostSimilarAutoScanPath(t *testing.T) {
	// A tiny, dense cluster: every trajectory sits within the k=all
	// corridor, so the cost model must pick the scan plan — and its
	// results must match the index plan exactly.
	rng := rand.New(rand.NewSource(61))
	var trajs []Trajectory
	for id := 1; id <= 6; id++ {
		tr := Trajectory{ID: ID(id)}
		for j := 0; j <= 20; j++ {
			tr.Samples = append(tr.Samples, Sample{
				X: float64(id) * 0.01, Y: rng.NormFloat64() * 0.01, T: float64(j) / 2,
			})
		}
		trajs = append(trajs, tr)
	}
	db, err := NewDB(RTree3D, trajs)
	if err != nil {
		t.Fatal(err)
	}
	q := trajs[0].Clone()
	q.ID = 0
	auto, _, usedIndex, err := db.KMostSimilarAuto(&q, 0, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	if usedIndex {
		t.Log("cost model chose the index even on the dense cluster; still verifying results")
	}
	want, _, err := db.KMostSimilar(&q, 0, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(auto) != len(want) {
		t.Fatalf("auto %d results vs %d", len(auto), len(want))
	}
	for i := range want {
		if auto[i].TrajID != want[i].TrajID {
			t.Fatalf("rank %d: auto %d vs index %d", i, auto[i].TrajID, want[i].TrajID)
		}
	}
}
