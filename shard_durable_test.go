package mstsearch_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	mstsearch "mstsearch"
	"mstsearch/internal/shard"
	"mstsearch/internal/storage"
	"mstsearch/internal/wal"
)

// Cluster durability: shards journal and recover independently, so a
// power cut inside ONE shard's log must cost at most that shard's
// unsynced suffix — its siblings keep every mutation, the recovered
// cluster is a consistent per-shard prefix of the issued stream, and
// merged queries over it match a single-DB oracle holding exactly the
// recovered trajectories.

// clusterOp is one mutation of the crash workload.
type clusterOp struct {
	add bool
	tr  mstsearch.Trajectory
	id  mstsearch.ID
	s   mstsearch.Sample
}

// clusterCrashWorkload builds a deterministic add+append stream.
func clusterCrashWorkload(rng *rand.Rand, nTrajs, nSamples, nAppends int) []clusterOp {
	trajs := mstsearch.FleetForTest(rng, nTrajs, nSamples)
	var ops []clusterOp
	for i := range trajs {
		ops = append(ops, clusterOp{add: true, tr: trajs[i]})
	}
	end := make(map[mstsearch.ID]float64, nTrajs)
	for i := range trajs {
		end[trajs[i].ID] = trajs[i].Samples[len(trajs[i].Samples)-1].T
	}
	for i := 0; i < nAppends; i++ {
		tr := &trajs[rng.Intn(len(trajs))]
		end[tr.ID] += 0.25
		ops = append(ops, clusterOp{
			id: tr.ID,
			s:  mstsearch.Sample{X: rng.Float64() * 100, Y: rng.Float64() * 100, T: end[tr.ID]},
		})
	}
	return ops
}

// owner maps an op onto its shard under the given placement.
func opOwner(op clusterOp, place shard.Placement, owners map[mstsearch.ID]int, n int) int {
	if op.add {
		o := place.Shard(&op.tr, n)
		owners[op.tr.ID] = o
		return o
	}
	return owners[op.id]
}

// issueClusterOps applies ops through the cluster, returning how many
// were acknowledged before the first failure.
func issueClusterOps(c *shard.Cluster, ops []clusterOp) (int, error) {
	for i, op := range ops {
		var err error
		if op.add {
			err = c.Add(op.tr)
		} else {
			err = c.AppendSample(op.id, op.s)
		}
		if err != nil {
			return i, err
		}
	}
	return len(ops), nil
}

// shardSig snapshots one shard's contents as trajectory → sample count.
func shardSig(db *mstsearch.DB) map[mstsearch.ID]int {
	sig := make(map[mstsearch.ID]int)
	for _, id := range db.IDs() {
		sig[id] = len(db.Get(id).Samples)
	}
	return sig
}

// sigAfter computes the expected signature of one shard after the first
// j ops of its own stream.
func sigAfter(stream []clusterOp, j int) map[mstsearch.ID]int {
	sig := make(map[mstsearch.ID]int)
	for _, op := range stream[:j] {
		if op.add {
			sig[op.tr.ID] = len(op.tr.Samples)
		} else {
			sig[op.id]++
		}
	}
	return sig
}

// matchShardPrefix reports whether sig equals the state after some prefix
// of the shard's op stream, returning that prefix length.
func matchShardPrefix(stream []clusterOp, sig map[mstsearch.ID]int) (int, bool) {
	for j := 0; j <= len(stream); j++ {
		if reflect.DeepEqual(sigAfter(stream, j), sig) {
			return j, true
		}
	}
	return 0, false
}

// TestClusterCrashOneShard is the sharded powercut sweep: for a range of
// byte offsets, cut the power inside shard 1's WAL mid-write while its
// siblings stay healthy, reopen the cluster, and require that
//
//  1. recovery succeeds for every shard,
//  2. the healthy shards kept every acknowledged mutation,
//  3. the crashed shard recovered a prefix of its own stream covering at
//     least its fsync-acknowledged ops (SyncAlways), and
//  4. a merged k-MST query over the recovered cluster is bit-identical to
//     a single DB holding exactly the recovered trajectories.
func TestClusterCrashOneShard(t *testing.T) {
	const (
		nShards = 3
		target  = 1 // the shard whose log loses power
		kind    = mstsearch.RTree3D
	)
	place := shard.HashPlacement{}
	rng := rand.New(rand.NewSource(41))
	ops := clusterCrashWorkload(rng, 12, 12, 30)

	// Split the stream into per-shard substreams for the prefix checks.
	streams := make([][]clusterOp, nShards)
	owners := make(map[mstsearch.ID]int)
	for _, op := range ops {
		o := opOwner(op, place, owners, nShards)
		streams[o] = append(streams[o], op)
	}
	if len(streams[target]) == 0 {
		t.Fatalf("workload routed nothing to shard %d; widen the fleet", target)
	}

	qref := ops[0].tr // differential query, independent of recovered state
	query := func(eng interface {
		Query(context.Context, mstsearch.Request) (mstsearch.Response, error)
	}) ([]mstsearch.Result, error) {
		q := qref.Clone()
		q.ID = 0
		resp, err := eng.Query(context.Background(), mstsearch.Request{
			Q: &q, Interval: mstsearch.Interval{T1: 2, T2: 8}, K: 4,
			Options: mstsearch.DefaultOptions(),
		})
		return resp.Results, err
	}

	opts := func(b *storage.PowercutBudget) shard.Options {
		return shard.Options{ShardDurable: func(i int) mstsearch.DurableOptions {
			if i != target {
				return mstsearch.DurableOptions{}
			}
			return mstsearch.DurableOptions{
				SegmentBytes:    512,
				CheckpointBytes: -1,
				OpenFile:        func(path string) (wal.File, error) { return b.Open(path) },
			}
		}}
	}

	// Dry run with an unlimited budget to measure the target shard's write
	// volume.
	root := t.TempDir()
	dry := storage.NewPowercutBudget(-1)
	c, err := shard.Open(filepath.Join(root, "dry"), kind, nShards, place, opts(dry))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := issueClusterOps(c, ops); err != nil {
		t.Fatalf("dry run stopped at op %d: %v", n, err)
	}
	total := dry.Written()
	if total == 0 {
		t.Fatal("dry run wrote nothing through the target shard's budget")
	}
	c.Close()

	stride := total/24 + 1
	for cut := int64(0); cut <= total; cut += stride {
		dir := filepath.Join(root, fmt.Sprintf("cut-%d", cut))
		b := storage.NewPowercutBudget(cut)
		acked := 0
		c, err := shard.Open(dir, kind, nShards, place, opts(b))
		if err == nil {
			acked, err = issueClusterOps(c, ops)
		}
		if err != nil && !errors.Is(err, storage.ErrInjected) {
			t.Fatalf("cut %d: unexpected failure class: %v", cut, err)
		}
		if err == nil && cut < total {
			t.Fatalf("cut %d: workload finished despite a budget below the write volume", cut)
		}
		if err := b.Crash(true); err != nil {
			t.Fatalf("cut %d: crash: %v", cut, err)
		}
		if c != nil {
			c.Close() // the tripped shard may error; recovery below is the oracle
		}

		re, rerr := shard.Open(dir, kind, nShards, place, shard.Options{})
		if rerr != nil {
			t.Fatalf("cut %d: cluster recovery failed: %v", cut, rerr)
		}

		// Healthy shards: every acknowledged mutation of theirs survived.
		ackedPerShard := make([]int, nShards)
		seen := make(map[mstsearch.ID]int)
		for _, op := range ops[:acked] {
			ackedPerShard[opOwner(op, place, seen, nShards)]++
		}
		for i := 0; i < nShards; i++ {
			sig := shardSig(re.Shard(i))
			j, ok := matchShardPrefix(streams[i], sig)
			if !ok {
				t.Fatalf("cut %d: shard %d state is not a prefix of its stream", cut, i)
			}
			if i != target && j != ackedPerShard[i] {
				t.Fatalf("cut %d: healthy shard %d recovered %d of %d acknowledged ops", cut, i, j, ackedPerShard[i])
			}
			if i == target && j < ackedPerShard[i] {
				t.Fatalf("cut %d: crashed shard recovered only %d of %d fsync-acknowledged ops", cut, j, ackedPerShard[i])
			}
		}

		// Differential: merged queries over the recovered cluster match a
		// single DB holding exactly the recovered trajectories.
		oracle := mstsearch.Open(kind)
		for i := 0; i < nShards; i++ {
			sdb := re.Shard(i)
			for _, id := range sdb.IDs() {
				if err := oracle.Add(sdb.Get(id).Clone()); err != nil {
					t.Fatalf("cut %d: oracle replay: %v", cut, err)
				}
			}
		}
		got, gerr := query(re)
		want, werr := query(oracle)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("cut %d: query error mismatch: recovered=%v oracle=%v", cut, gerr, werr)
		}
		if gerr == nil {
			mstsearch.CheckBitIdentical(t, "recovered-cluster-vs-oracle", int(cut), want, got)
		}
		if err := re.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		os.RemoveAll(dir) // bound the sweep's disk footprint
	}
}

// TestClusterManifestGuard pins the manifest: reopening a cluster
// directory under a different shard count, placement, or index kind must
// fail with ErrManifestMismatch instead of scattering writes under a new
// partitioning.
func TestClusterManifestGuard(t *testing.T) {
	dir := t.TempDir()
	c, err := shard.Open(dir, mstsearch.RTree3D, 3, shard.HashPlacement{}, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []struct {
		name  string
		kind  mstsearch.IndexKind
		n     int
		place shard.Placement
	}{
		{"shards", mstsearch.RTree3D, 4, shard.HashPlacement{}},
		{"placement", mstsearch.RTree3D, 3, shard.SpatialPlacement{}},
		{"kind", mstsearch.TBTree, 3, shard.HashPlacement{}},
	} {
		if _, err := shard.Open(dir, bad.kind, bad.n, bad.place, shard.Options{}); !errors.Is(err, shard.ErrManifestMismatch) {
			t.Fatalf("%s mismatch: got %v, want ErrManifestMismatch", bad.name, err)
		}
	}
	// The matching parameters still open.
	c, err = shard.Open(dir, mstsearch.RTree3D, 3, shard.HashPlacement{}, shard.Options{})
	if err != nil {
		t.Fatalf("matching reopen: %v", err)
	}
	kind, n, placement, replicas, err := shard.ReadManifest(dir)
	if err != nil || kind != mstsearch.RTree3D || n != 3 || placement != "hash" || replicas != 1 {
		t.Fatalf("manifest reads back (%v, %d, %q, %d, %v)", kind, n, placement, replicas, err)
	}
	c.Close()
}

// TestClusterDurableRoundTrip pins the plain (no-fault) durable cycle:
// ingest through a durable cluster, checkpoint, close, reopen, and get
// bit-identical answers to an in-memory single DB with the same data.
func TestClusterDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(43))
	trajs := mstsearch.FleetForTest(rng, 20, 24)
	single, err := mstsearch.NewDB(mstsearch.TBTree, trajs)
	if err != nil {
		t.Fatal(err)
	}

	c, err := shard.Open(dir, mstsearch.TBTree, 4, shard.SpatialPlacement{MinX: 0, MaxX: 100}, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range trajs {
		if err := c.Add(trajs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := shard.Open(dir, mstsearch.TBTree, 4, shard.SpatialPlacement{MinX: 0, MaxX: 100}, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(trajs) {
		t.Fatalf("reopened cluster holds %d trajectories, want %d", re.Len(), len(trajs))
	}
	for iter := 0; iter < 6; iter++ {
		q := trajs[rng.Intn(len(trajs))].Clone()
		q.ID = 0
		req := mstsearch.Request{
			Q: &q, Interval: mstsearch.Interval{T1: 1, T2: 9}, K: 3,
			Options: oracleOptions(),
		}
		sresp, err := single.Query(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		cresp, err := re.Query(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		mstsearch.CheckBitIdentical(t, "reopened-cluster", iter, sresp.Results, cresp.Results)
	}
}
