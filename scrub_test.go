package mstsearch_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	mstsearch "mstsearch"
)

// Scrubber differential suite: ScrubStore must bless exactly the
// directories recovery would replay losslessly, flag exactly the damage
// recovery would refuse, and classify a torn tail (recoverable) apart
// from mid-log corruption (not). Each case builds a real store, injures
// it the way the scenario describes, and checks the report.

// buildScrubStore writes a durable store with one snapshot and a live
// WAL holding post-checkpoint mutations, then closes it.
func buildScrubStore(t *testing.T, dir string) {
	t.Helper()
	db, err := mstsearch.OpenDurable(dir, mstsearch.RTree3D, mstsearch.DurableOptions{
		SegmentBytes:    512,
		CheckpointBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(59))
	trajs := mstsearch.FleetForTest(rng, 8, 12)
	for i := range trajs {
		if err := db.Add(trajs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint appends live only in the WAL — the bytes the
	// scrubber's frame walk must cover.
	for i := range trajs {
		if err := db.AppendSample(trajs[i].ID, mstsearch.Sample{X: float64(i), Y: 1, T: 100}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// scrubFiles returns the store's snapshot and live-WAL segment names.
func scrubFiles(t *testing.T, dir string) (snaps, segs []string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		switch {
		case strings.HasPrefix(e.Name(), "snapshot-"):
			snaps = append(snaps, e.Name())
		case strings.HasPrefix(e.Name(), "wal-"):
			segs = append(segs, e.Name())
		}
	}
	return snaps, segs
}

func TestScrubCleanStore(t *testing.T) {
	dir := t.TempDir()
	buildScrubStore(t, dir)
	rep, err := mstsearch.ScrubStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Damaged() {
		t.Fatalf("clean store reported damage: %+v", rep.Findings)
	}
	if rep.Snapshots == 0 || rep.WALSegments == 0 || rep.WALFrames == 0 {
		t.Fatalf("clean store verified nothing: %+v", rep)
	}
	if rep.TornTail {
		t.Fatal("clean store reported a torn tail")
	}
}

func TestScrubFlagsWALCorruption(t *testing.T) {
	dir := t.TempDir()
	buildScrubStore(t, dir)
	_, segs := scrubFiles(t, dir)
	if len(segs) == 0 {
		t.Fatal("store has no WAL segments")
	}
	// Flip a byte just past the first segment's header: mid-log damage,
	// with decodable frames after it, so recovery could not dismiss it as
	// a torn tail.
	seg := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 32 {
		t.Fatalf("segment %s too short to corrupt meaningfully (%d bytes)", segs[0], len(data))
	}
	data[20] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := mstsearch.ScrubStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Damaged() {
		t.Fatal("scrub blessed a store with a corrupt WAL frame")
	}
	found := false
	for _, f := range rep.Findings {
		if f.File == segs[0] && f.Problem != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("findings %+v do not name the corrupt segment %s", rep.Findings, segs[0])
	}
}

func TestScrubToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	buildScrubStore(t, dir)
	_, segs := scrubFiles(t, dir)
	if len(segs) == 0 {
		t.Fatal("store has no WAL segments")
	}
	// Cut the final segment mid-frame: the torn write recovery truncates
	// away. The scrubber must report it as recoverable, not as damage.
	last := filepath.Join(dir, segs[len(segs)-1])
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() < 24 {
		t.Fatalf("final segment too short to tear (%d bytes)", st.Size())
	}
	if err := os.Truncate(last, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	rep, err := mstsearch.ScrubStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Damaged() {
		t.Fatalf("torn tail misreported as damage: %+v", rep.Findings)
	}
	if !rep.TornTail {
		t.Fatal("scrub did not notice the torn tail")
	}
}

func TestScrubFlagsSnapshotCorruption(t *testing.T) {
	dir := t.TempDir()
	buildScrubStore(t, dir)
	snaps, _ := scrubFiles(t, dir)
	if len(snaps) == 0 {
		t.Fatal("store has no snapshots")
	}
	snap := filepath.Join(dir, snaps[0])
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := mstsearch.ScrubStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Damaged() {
		t.Fatal("scrub blessed a store with a corrupt snapshot")
	}
	if rep.Findings[0].File != snaps[0] {
		t.Fatalf("finding %+v does not name the snapshot", rep.Findings[0])
	}
}

func TestScrubRefusesUnrecognizableDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mstsearch.ScrubStore(dir); err == nil {
		t.Fatal("scrub blessed a directory with no snapshots or WAL")
	}
	if _, err := mstsearch.ScrubStore(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("scrub blessed a missing directory")
	}
}
