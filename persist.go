package mstsearch

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"mstsearch/internal/storage"
	"mstsearch/internal/wal"
)

// Snapshot format (little endian):
//
//	magic "MSTDB\x00"   6 B
//	version             u16       (currently 1)
//	kind                u8
//	root, height, nodes u32 ×3    (index metadata)
//	vmax                f64
//	pageSize, numPages  u32 ×2
//	pages               numPages × pageSize raw bytes
//	numTrajs            u32
//	per trajectory:     id u32, numSamples u32, samples (x, y, t as f64)
//	crc32 (IEEE) of everything above   u32
//
// The CRC catches torn writes and on-disk corruption at load time.

var snapshotMagic = [6]byte{'M', 'S', 'T', 'D', 'B', 0}

const snapshotVersion = 1

// Errors returned by Load.
var (
	ErrBadSnapshot     = errors.New("mstsearch: not a database snapshot")
	ErrSnapshotVersion = errors.New("mstsearch: unsupported snapshot version")
	ErrSnapshotCRC     = errors.New("mstsearch: snapshot checksum mismatch")
)

// Save writes the whole database — index pages and trajectory store — to
// path atomically and durably: the snapshot is assembled in a uniquely
// named temp file in the target directory, fsynced, renamed over path,
// and the directory is fsynced so the rename itself survives a crash.
// Concurrent Saves to the same path cannot clobber each other's temp
// file (each gets its own), and a crash at any point leaves either the
// old snapshot or the new one — never a torn mix. Save takes the
// database's read lock, so it snapshots a consistent state even while
// queries run.
func (db *DB) Save(path string) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.saveLocked(path)
}

// saveLocked is Save without the locking, shared with Checkpoint (which
// already holds the write lock). Callers must hold db.mu (either side).
func (db *DB) saveLocked(path string) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	// Cleanup contract: the temp file never outlives a failed Save, and
	// the first error wins — a close error on the failure path must not
	// shadow the write error that caused it.
	closed := false
	defer func() {
		if !closed {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			os.Remove(tmp)
		}
	}()

	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(f, crc), 1<<20)

	write := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }

	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	meta := db.indexMeta()
	hdr := []any{
		uint16(snapshotVersion), uint8(db.kind),
		uint32(meta.Root), uint32(meta.Height), uint32(meta.Nodes),
		db.vmax,
		uint32(db.file.PageSize()), uint32(db.file.NumPages()),
	}
	for _, v := range hdr {
		if err := write(v); err != nil {
			return err
		}
	}
	for i := 0; i < db.file.NumPages(); i++ {
		page, err := db.file.Read(storage.PageID(i))
		if err != nil {
			return err
		}
		if _, err := bw.Write(page); err != nil {
			return err
		}
	}
	if err := write(uint32(len(db.trajs))); err != nil {
		return err
	}
	for i := range db.trajs {
		tr := &db.trajs[i]
		if err := write(uint32(tr.ID)); err != nil {
			return err
		}
		if err := write(uint32(len(tr.Samples))); err != nil {
			return err
		}
		for _, s := range tr.Samples {
			if err := write([3]float64{s.X, s.Y, s.T}); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// The CRC of everything written so far, outside the checksummed region.
	if err := binary.Write(f, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	closed = true
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	// The rename is only durable once the directory entry is on stable
	// storage; without this a crash can resurrect the old snapshot — or
	// no snapshot at all — after Save returned success.
	return wal.SyncDir(dir)
}

// WriteFileAtomic writes data to path with the snapshot discipline Save
// uses: a uniquely named temp file in the target directory, fsync, rename
// over path, directory fsync. A crash at any point leaves either the old
// file or the new one — never a torn mix. The cluster layer
// (internal/shard) persists its manifest through it.
func WriteFileAtomic(path string, data []byte) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	closed := false
	defer func() {
		if !closed {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			os.Remove(tmp)
		}
	}()
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	closed = true
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return wal.SyncDir(dir)
}

// indexMeta returns the active tree's root metadata in a common shape.
// Callers must hold db.mu (either side): it reads the engine's handles.
func (db *DB) indexMeta() treeMeta { return db.eng.meta() }

// Load reads a database snapshot written by Save. The returned DB serves
// queries; further Adds go to the same in-memory page file.
func Load(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	// Verify the trailing CRC before parsing.
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < int64(len(snapshotMagic))+4 {
		return nil, ErrBadSnapshot
	}
	body := io.LimitReader(f, st.Size()-4)
	crc := crc32.NewIEEE()
	br := bufio.NewReaderSize(io.TeeReader(body, crc), 1<<20)

	var magic [6]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, ErrBadSnapshot
	}
	if magic != snapshotMagic {
		return nil, ErrBadSnapshot
	}
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	var (
		version                  uint16
		kind                     uint8
		root, height, nodes      uint32
		vmax                     float64
		pageSize, numPages, nTrj uint32
	)
	for _, v := range []any{&version, &kind, &root, &height, &nodes, &vmax, &pageSize, &numPages} {
		if err := read(v); err != nil {
			return nil, fmt.Errorf("%w: truncated header", ErrBadSnapshot)
		}
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("%w: %d", ErrSnapshotVersion, version)
	}
	if !IndexKind(kind).Valid() {
		return nil, fmt.Errorf("%w: %w %d", ErrBadSnapshot, ErrUnknownIndexKind, kind)
	}
	if pageSize == 0 || pageSize > 1<<20 {
		return nil, fmt.Errorf("%w: page size %d", ErrBadSnapshot, pageSize)
	}
	// Length fields must be plausible against the physical file size, so a
	// corrupted count fails cleanly instead of provoking a huge allocation.
	if int64(numPages)*int64(pageSize) > st.Size() {
		return nil, fmt.Errorf("%w: %d pages of %d bytes exceed snapshot size", ErrBadSnapshot, numPages, pageSize)
	}

	db := &DB{
		kind: IndexKind(kind),
		file: storage.NewFile(int(pageSize)),
		byID: map[ID]int{},
		vmax: vmax,
	}
	buf := make([]byte, pageSize)
	for i := uint32(0); i < numPages; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("%w: truncated pages", ErrBadSnapshot)
		}
		id, err := db.file.Alloc()
		if err != nil {
			return nil, err
		}
		if err := db.file.Write(id, buf); err != nil {
			return nil, err
		}
	}
	if err := read(&nTrj); err != nil {
		return nil, fmt.Errorf("%w: truncated trajectory section", ErrBadSnapshot)
	}
	if int64(nTrj) > st.Size()/8 {
		return nil, fmt.Errorf("%w: trajectory count %d exceeds snapshot size", ErrBadSnapshot, nTrj)
	}
	for i := uint32(0); i < nTrj; i++ {
		var id, n uint32
		if err := read(&id); err != nil {
			return nil, fmt.Errorf("%w: truncated trajectory header", ErrBadSnapshot)
		}
		if err := read(&n); err != nil {
			return nil, fmt.Errorf("%w: truncated trajectory header", ErrBadSnapshot)
		}
		if int64(n) > st.Size()/24 {
			return nil, fmt.Errorf("%w: sample count %d exceeds snapshot size", ErrBadSnapshot, n)
		}
		tr := Trajectory{ID: ID(id), Samples: make([]Sample, n)}
		for j := uint32(0); j < n; j++ {
			var p [3]float64
			if err := read(&p); err != nil {
				return nil, fmt.Errorf("%w: truncated samples", ErrBadSnapshot)
			}
			tr.Samples[j] = Sample{X: p[0], Y: p[1], T: p[2]}
		}
		db.byID[tr.ID] = len(db.trajs)
		db.trajs = append(db.trajs, tr)
	}

	var want uint32
	if err := binary.Read(f, binary.LittleEndian, &want); err != nil {
		return nil, fmt.Errorf("%w: missing checksum", ErrBadSnapshot)
	}
	if crc.Sum32() != want {
		return nil, ErrSnapshotCRC
	}

	// Rebind the tree to the restored pages. A loaded 3D R-tree remains
	// writable (its insert needs no build-time state); the other kinds
	// reopen read-only — their build-time state (per-trajectory tail
	// tables, pivot assignments) is not in the snapshot — so mutations on
	// those return the structure's ErrReadOnly until a Recover rebuilds.
	db.eng = db.openEngine(db.kind, db.file, treeMeta{
		Root: storage.PageID(root), Height: int(height), Nodes: int(nodes),
	})
	if db.vmax == 0 {
		for i := range db.trajs {
			db.vmax = math.Max(db.vmax, db.trajs[i].MaxSpeed())
		}
	}
	return db, nil
}
