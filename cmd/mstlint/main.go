// mstlint is the repository's invariant multichecker: it runs the custom
// analyzers of internal/analysis over the module and exits non-zero on
// any unbaselined finding.
//
// Per-package analyzers (floatcmp, ctxflow, typederr, mutexcopy,
// lockguard) check one package at a time; whole-program analyzers
// (lockorder, fsyncorder, envelope, atomicfield, leakcheck) see every
// requested package at once and pass facts across package boundaries.
//
// Usage:
//
//	go run ./cmd/mstlint ./...            # whole module (the CI gate)
//	go run ./cmd/mstlint ./internal/mst   # one package
//	go run ./cmd/mstlint -list            # describe the analyzers
//	go run ./cmd/mstlint -json ./...      # findings as JSON
//	go run ./cmd/mstlint -lockgraph ./... # dump the lock acquisition graph
//
// Findings management is baseline-driven. The checked-in baseline
// (lint-baseline.json at the module root) inventories the findings the
// tree is allowed to carry; it is diffed in both directions, so a new
// finding fails the run and so does a baseline entry the run no longer
// produces (stale allowance — shrink the baseline):
//
//	go run ./cmd/mstlint -baseline lint-baseline.json ./...
//	go run ./cmd/mstlint -write-baseline lint-baseline.json ./...
//
// With no -baseline flag, lint-baseline.json at the module root is used
// when it exists. Individual findings are suppressed per line with a
// justified directive (at least ten characters of justification, and
// the directive itself becomes a finding when it stops matching):
//
//	//lint:ignore <analyzer> <reason>
//
// The checker is built only on the standard library's go/ast + go/types
// (see internal/analysis), so it runs in hermetic build environments
// with no module downloads.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mstsearch/internal/analysis"
	"mstsearch/internal/analysis/atomicfield"
	"mstsearch/internal/analysis/ctxflow"
	"mstsearch/internal/analysis/envelope"
	"mstsearch/internal/analysis/floatcmp"
	"mstsearch/internal/analysis/fsyncorder"
	"mstsearch/internal/analysis/leakcheck"
	"mstsearch/internal/analysis/lockcheck"
	"mstsearch/internal/analysis/lockorder"
	"mstsearch/internal/analysis/typederr"
)

var analyzers = []*analysis.Analyzer{
	floatcmp.Analyzer,
	ctxflow.Analyzer,
	typederr.Analyzer,
	lockcheck.MutexCopy,
	lockcheck.LockGuard,
	lockorder.Analyzer,
	fsyncorder.Analyzer,
	envelope.Analyzer,
	atomicfield.Analyzer,
	leakcheck.Analyzer,
}

// defaultBaseline is the baseline file consulted when -baseline is not
// given, relative to the module root.
const defaultBaseline = "lint-baseline.json"

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON instead of text")
	baselinePath := flag.String("baseline", "", "diff findings against this baseline file (default: lint-baseline.json at the module root, when present)")
	writeBaseline := flag.String("write-baseline", "", "write the current findings as a baseline to this file and exit clean")
	lockgraph := flag.Bool("lockgraph", false, "dump the inferred lock acquisition graph to stderr")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			scope := "all packages"
			if len(a.Packages) > 0 {
				scope = fmt.Sprint(a.Packages)
			}
			kind := "per-package"
			if a.RunProgram != nil {
				kind = "whole-program"
			}
			fmt.Printf("%-11s %s\n            %s; scope: %s\n", a.Name, a.Doc, kind, scope)
		}
		return
	}
	if *lockgraph {
		lockorder.Debug = os.Stderr
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := run(patterns, *jsonOut, *baselinePath, *writeBaseline); err != nil {
		fmt.Fprintln(os.Stderr, "mstlint:", err)
		os.Exit(2)
	}
}

func run(patterns []string, jsonOut bool, baselinePath, writeBaselinePath string) error {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		return err
	}
	paths, err := loader.ExpandPatterns(patterns)
	if err != nil {
		return err
	}
	prog := &analysis.Program{}
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return err
		}
		prog.Packages = append(prog.Packages, pkg)
		if needsTests(path) {
			tpkg, err := loader.LoadTests(path)
			if err != nil {
				return err
			}
			if tpkg != nil {
				prog.Tests = append(prog.Tests, tpkg)
			}
		}
	}
	diags, err := analysis.RunAll(prog, analyzers)
	if err != nil {
		return err
	}
	findings := analysis.RelFindings(diags, loader.ModuleDir)

	if writeBaselinePath != "" {
		f, err := os.Create(writeBaselinePath)
		if err != nil {
			return err
		}
		if err := analysis.WriteBaseline(f, analysis.NewBaseline(findings)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mstlint: wrote %d baseline entr%s to %s\n",
			len(findings), plural(len(findings), "y", "ies"), writeBaselinePath)
		return nil
	}

	baseline, err := loadBaseline(baselinePath, loader.ModuleDir)
	if err != nil {
		return err
	}
	fresh, stale := analysis.DiffBaseline(findings, baseline)

	if jsonOut {
		if err := analysis.WriteFindings(os.Stdout, fresh); err != nil {
			return err
		}
	} else {
		for _, f := range fresh {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message)
		}
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "mstlint: stale baseline entry: %s in %s (%d allowed, no longer found): %q — shrink the baseline\n",
			e.Analyzer, e.File, e.Count, e.Message)
	}
	if len(fresh) > 0 || len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "mstlint: %d new finding(s), %d stale baseline entr%s\n",
			len(fresh), len(stale), plural(len(stale), "y", "ies"))
		os.Exit(1)
	}
	return nil
}

// needsTests reports whether any whole-program analyzer wants the
// test-augmented view of the package.
func needsTests(path string) bool {
	for _, a := range analyzers {
		if a.NeedTests && a.AppliesTo(path) {
			return true
		}
	}
	return false
}

// loadBaseline reads the requested baseline, or the default one at the
// module root when it exists; absent both, the baseline is empty and
// every finding is fresh.
func loadBaseline(path, moduleDir string) (analysis.Baseline, error) {
	explicit := path != ""
	if !explicit {
		path = filepath.Join(moduleDir, defaultBaseline)
	}
	f, err := os.Open(path)
	if err != nil {
		if !explicit && os.IsNotExist(err) {
			return analysis.Baseline{}, nil
		}
		return analysis.Baseline{}, err
	}
	defer f.Close()
	return analysis.ReadBaseline(f)
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
