// mstlint is the repository's invariant multichecker: it runs the custom
// analyzers of internal/analysis (floatcmp, ctxflow, typederr, mutexcopy,
// lockguard) over the module and exits non-zero on any finding.
//
// Usage:
//
//	go run ./cmd/mstlint ./...          # whole module (the CI gate)
//	go run ./cmd/mstlint ./internal/mst # one package
//	go run ./cmd/mstlint -list          # describe the analyzers
//
// Findings are suppressed per line with a justified directive:
//
//	//lint:ignore <analyzer> <reason>
//
// The checker is built only on the standard library's go/ast + go/types
// (see internal/analysis), so it runs in hermetic build environments with
// no module downloads.
package main

import (
	"flag"
	"fmt"
	"os"

	"mstsearch/internal/analysis"
	"mstsearch/internal/analysis/ctxflow"
	"mstsearch/internal/analysis/floatcmp"
	"mstsearch/internal/analysis/lockcheck"
	"mstsearch/internal/analysis/typederr"
)

var analyzers = []*analysis.Analyzer{
	floatcmp.Analyzer,
	ctxflow.Analyzer,
	typederr.Analyzer,
	lockcheck.MutexCopy,
	lockcheck.LockGuard,
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			scope := "all packages"
			if len(a.Packages) > 0 {
				scope = fmt.Sprint(a.Packages)
			}
			fmt.Printf("%-10s %s\n           scope: %s\n", a.Name, a.Doc, scope)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := run(patterns); err != nil {
		fmt.Fprintln(os.Stderr, "mstlint:", err)
		os.Exit(2)
	}
}

func run(patterns []string) error {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		return err
	}
	paths, err := loader.ExpandPatterns(patterns)
	if err != nil {
		return err
	}
	findings := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return err
		}
		applicable := make([]*analysis.Analyzer, 0, len(analyzers))
		for _, a := range analyzers {
			if a.AppliesTo(path) {
				applicable = append(applicable, a)
			}
		}
		diags, err := analysis.Run(pkg, applicable)
		if err != nil {
			return err
		}
		for _, d := range diags {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "mstlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
	return nil
}
