// Command gendata emits trajectory datasets as "id,x,y,t" CSV, one row per
// sample. The two generators mirror the paper's data sources: the
// GSTD-style synthetics (S0100…S1000 of Table 2) and the Trucks-like
// fleet used for the quality study.
//
// Usage:
//
//	gendata -kind gstd -objects 100 -samples 2001 -seed 1 -o s0100.csv
//	gendata -kind trucks -scale 1 -seed 1 -o trucks.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"mstsearch/internal/experiments"
	"mstsearch/internal/trajectory"
)

func main() {
	var (
		kind    = flag.String("kind", "gstd", "generator: gstd or trucks")
		objects = flag.Int("objects", 100, "gstd: number of moving objects")
		samples = flag.Int("samples", 2001, "gstd: samples per object")
		scale   = flag.Float64("scale", 1, "trucks: dataset scale in (0,1]")
		seed    = flag.Int64("seed", 2007, "generator seed")
		out     = flag.String("o", "-", "output file (default stdout)")
	)
	flag.Parse()

	var data *trajectory.Dataset
	switch *kind {
	case "gstd":
		data = experiments.SyntheticDataset(*objects, *samples, *seed)
	case "trucks":
		data = experiments.TrucksDataset(*scale, *seed)
	default:
		fmt.Fprintf(os.Stderr, "gendata: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer func() { fail(f.Close()) }()
		bw := bufio.NewWriter(f)
		defer func() { fail(bw.Flush()) }()
		w = bw
	}
	fail(trajectory.WriteCSV(w, data.Trajs))
	fmt.Fprintf(os.Stderr, "gendata: wrote %d trajectories / %d segments\n",
		data.Len(), data.NumSegments())
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
}
