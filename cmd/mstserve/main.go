// Command mstserve serves a trajectory store over HTTP: the canonical
// query surface (k-MST, range, nearest, topology, batch, explain), the
// durable write path (ingest, append, checkpoint), and operational
// endpoints (/healthz, /metrics) — behind the serving layer's admission
// control, per-request deadlines, and per-tenant budgets.
//
// Usage:
//
//	mstserve -dir store/ -addr :8080
//	mstserve -synthetic 200 -addr :8080          # in-memory demo fleet
//	mstserve -dir cluster/ -shards 4 -addr :8080 # sharded store (mststore cluster-init)
//
// With -shards > 0 the directory (or synthetic fleet) is served as a
// horizontally sharded cluster: queries scatter-gather across the shards
// behind the same admission ladder, and /v1/query answers are identical
// to a single-node store holding the same data.
//
// Flags tune the overload posture:
//
//	-max-concurrent N    global in-flight query cap (default 2×GOMAXPROCS)
//	-queue N             bounded wait queue depth
//	-queue-wait D        max time a request may queue before shedding
//	-tenant-rps R        per-tenant token-bucket rate (0 = off)
//	-deadline D          default per-request deadline
//	-max-nodes N         per-query node-access budget (0 = unlimited)
//	-max-ioreads N       per-query physical-read budget (0 = unlimited)
//
// A SIGINT/SIGTERM drains in-flight requests and closes the store.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mstsearch"
	"mstsearch/internal/gstd"
	"mstsearch/internal/server"
	"mstsearch/internal/shard"
)

// store is what mstserve serves: the server's Engine plus the lifecycle
// methods main drives directly. Satisfied by *mstsearch.DB and
// *shard.Cluster.
type store interface {
	server.Engine
	EnableWarmBuffer()
	Close() error
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		dir        = flag.String("dir", "", "durable store directory (mststore format)")
		tree       = flag.String("tree", "rtree", "index structure for a new store: rtree, tb, str, or ntree")
		synthetic  = flag.Int("synthetic", 0, "serve an in-memory GSTD fleet of N objects instead of a store")
		seed       = flag.Int64("seed", 1, "synthetic fleet seed")
		maxConc    = flag.Int("max-concurrent", 0, "global in-flight cap (0 = 2×GOMAXPROCS)")
		queue      = flag.Int("queue", -1, "wait queue depth (-1 = same as max-concurrent)")
		queueWait  = flag.Duration("queue-wait", 500*time.Millisecond, "max queue wait before shedding")
		tenantRPS  = flag.Float64("tenant-rps", 0, "per-tenant request rate (0 = rate limiting off)")
		deadline   = flag.Duration("deadline", 2*time.Second, "default per-request deadline")
		maxDL      = flag.Duration("max-deadline", 30*time.Second, "ceiling for client-requested deadlines")
		maxNodes   = flag.Int("max-nodes", 0, "per-query node-access budget (0 = unlimited)")
		maxIOReads = flag.Uint64("max-ioreads", 0, "per-query physical-read budget (0 = unlimited)")
		coalesce   = flag.Duration("coalesce", time.Millisecond, "query coalescing window (0 = off)")
		shards     = flag.Int("shards", 0, "serve as a cluster of N shards (0 = single store)")
		placement  = flag.String("placement", "hash", "cluster placement policy: hash or spatial")
		replicas   = flag.Int("replicas", 1, "replicas per shard (cluster mode; manifest wins on reopen)")
		writeConc  = flag.String("write-concern", "all", "replicated write acknowledgement: all, quorum, or one")
		hedgeAfter = flag.Duration("hedge-after", 0, "hedge slow replica reads after this delay (0 = off)")
		repairIvl  = flag.Duration("repair-interval", 30*time.Second, "anti-entropy repair loop period (0 = off)")
	)
	flag.Parse()

	concern, err := shard.ParseWriteConcern(*writeConc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mstserve:", err)
		os.Exit(2)
	}
	ropts := shard.Options{
		Replicas:       *replicas,
		WriteConcern:   concern,
		HedgeAfter:     *hedgeAfter,
		RepairInterval: *repairIvl,
	}
	db, err := openStore(*dir, *tree, *synthetic, *seed, *shards, *placement, ropts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mstserve:", err)
		os.Exit(1)
	}
	db.EnableWarmBuffer()

	cfg := server.DefaultConfig()
	cfg.DefaultDeadline = *deadline
	cfg.MaxDeadline = *maxDL
	cfg.QueueWait = *queueWait
	cfg.TenantRPS = *tenantRPS
	cfg.CoalesceWindow = *coalesce
	cfg.Budgets = server.Budget{MaxNodeAccesses: *maxNodes, MaxIOReads: *maxIOReads}
	if *maxConc > 0 {
		cfg.MaxConcurrent = *maxConc
	}
	if *queue >= 0 {
		cfg.QueueDepth = *queue
	} else {
		cfg.QueueDepth = cfg.MaxConcurrent
	}

	srv := server.NewEngine(db, cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	// Drain on SIGINT/SIGTERM: stop accepting, cancel in-flight work
	// through the server's base context, then close the store.
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "mstserve: draining")
		_ = httpSrv.Close()
		srv.Close()
		if err := db.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mstserve: close store:", err)
		}
	}()

	fmt.Fprintf(os.Stderr, "mstserve: %d trajectories / %d segments on %s\n",
		db.Len(), db.NumSegments(), *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "mstserve:", err)
		os.Exit(1)
	}
	<-done
}

// openStore opens the durable store (or builds an in-memory synthetic
// fleet when -synthetic is set), as a single DB or — with -shards > 0 —
// as a sharded cluster.
func openStore(dir, tree string, synthetic int, seed int64, shards int, placement string, ropts shard.Options) (store, error) {
	if shards > 0 {
		return openCluster(dir, tree, synthetic, seed, shards, placement, ropts)
	}
	if dir != "" && synthetic == 0 {
		if _, _, _, _, err := shard.ReadManifest(dir); err == nil {
			// The directory is a cluster: serve it as one even without
			// -shards, rather than opening an empty single store beside
			// the shard directories.
			return openCluster(dir, tree, 0, seed, 0, placement, ropts)
		}
	}
	return openDB(dir, tree, synthetic, seed)
}

// openCluster opens (or synthesizes) a sharded store. An existing cluster
// directory's manifest wins over the flags — including the replica count —
// so reopening never needs the init-time parameters repeated exactly.
func openCluster(dir, tree string, synthetic int, seed int64, shards int, placement string, ropts shard.Options) (*shard.Cluster, error) {
	place, err := shard.PlacementByName(placement)
	if err != nil {
		return nil, err
	}
	if synthetic > 0 {
		c, err := shard.New(parseKind(tree), shards, place, ropts)
		if err != nil {
			return nil, err
		}
		data := gstd.Generate(gstd.Config{
			NumObjects: synthetic, SamplesPerObject: 64, Seed: seed,
		})
		for i := range data.Trajs {
			if err := c.Add(data.Trajs[i]); err != nil {
				return nil, err
			}
		}
		return c, nil
	}
	if dir == "" {
		return nil, fmt.Errorf("need -dir or -synthetic")
	}
	if kind, n, placeName, reps, err := shard.ReadManifest(dir); err == nil {
		// Serve what the directory holds rather than demanding the
		// operator remember cluster-init's flags.
		if place, err = shard.PlacementByName(placeName); err != nil {
			return nil, err
		}
		ropts.Replicas = reps
		return shard.Open(dir, kind, n, place, ropts)
	}
	return shard.Open(dir, parseKind(tree), shards, place, ropts)
}

// openDB opens the durable store, or builds an in-memory synthetic fleet
// when -synthetic is set.
func openDB(dir, tree string, synthetic int, seed int64) (*mstsearch.DB, error) {
	if synthetic > 0 {
		data := gstd.Generate(gstd.Config{
			NumObjects: synthetic, SamplesPerObject: 64, Seed: seed,
		})
		return mstsearch.NewDB(parseKind(tree), data.Trajs)
	}
	if dir == "" {
		return nil, fmt.Errorf("need -dir or -synthetic")
	}
	kind := parseKind(tree)
	db, err := mstsearch.OpenDurable(dir, kind, mstsearch.DurableOptions{})
	if errors.Is(err, mstsearch.ErrSnapshotKind) {
		// The directory is pinned to another index kind; serve what it
		// holds rather than demanding the operator remember the flag.
		for _, k := range mstsearch.IndexKinds() {
			if k == kind {
				continue
			}
			if db, err = mstsearch.OpenDurable(dir, k, mstsearch.DurableOptions{}); err == nil {
				break
			}
		}
	}
	return db, err
}

func parseKind(tree string) mstsearch.IndexKind {
	kind, err := mstsearch.ParseIndexKind(tree)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mstserve: %v\n", err)
		os.Exit(2)
	}
	return kind
}
