// Command mststore manages durable trajectory stores: directories holding
// a checkpoint snapshot plus a write-ahead log, as created by
// mstsearch.OpenDurable. Unlike mstquery — which rebuilds an in-memory
// index from CSV on every run — mststore ingests once and reopens the
// same store across runs, surviving crashes in between.
//
// Usage:
//
//	mststore ingest     -dir store/ -data trucks.csv [-tree rtree] [-sync always]
//	mststore append     -dir store/ -data updates.csv
//	mststore checkpoint -dir store/
//	mststore info       -dir store/
//	mststore query      -dir store/ -queryid 7 -k 5
//
// Sharded (cluster) stores partition trajectories across N independent
// shard directories under one root, each with its own WAL and
// checkpoints, pinned by a cluster manifest:
//
//	mststore cluster-init   -dir cluster/ -shards 4 [-replicas 2] [-placement hash] [-tree rtree]
//	mststore cluster-ingest -dir cluster/ -data trucks.csv
//	mststore cluster-info   -dir cluster/
//	mststore cluster-query  -dir cluster/ -queryid 7 -k 5 [-p 0.25]
//
// verify is the offline scrubber: it walks every snapshot and WAL frame
// of a store directory — or every shard/replica directory of a cluster —
// re-checking the CRCs recovery would, and emits a JSON findings report,
// exiting non-zero when damage is found:
//
//	mststore verify -dir store/
//	mststore verify -dir cluster/
//
// Example:
//
//	gendata -kind trucks -scale 0.2 -o trucks.csv
//	mststore ingest -dir store/ -data trucks.csv -tree tb
//	mststore query -dir store/ -queryid 7 -k 5
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mstsearch"
	"mstsearch/internal/shard"
	"mstsearch/internal/wal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "ingest":
		runIngest(os.Args[2:])
	case "append":
		runAppend(os.Args[2:])
	case "checkpoint":
		runCheckpoint(os.Args[2:])
	case "info":
		runInfo(os.Args[2:])
	case "query":
		runQuery(os.Args[2:])
	case "cluster-init":
		runClusterInit(os.Args[2:])
	case "cluster-ingest":
		runClusterIngest(os.Args[2:])
	case "cluster-info":
		runClusterInfo(os.Args[2:])
	case "cluster-query":
		runClusterQuery(os.Args[2:])
	case "verify":
		runVerify(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mststore <ingest|append|checkpoint|info|query|verify|cluster-init|cluster-ingest|cluster-info|cluster-query> -dir <store> [flags]")
	os.Exit(2)
}

// storeFlags declares the flags every subcommand shares.
func storeFlags(name string) (*flag.FlagSet, *string, *string, *string) {
	fs := flag.NewFlagSet("mststore "+name, flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	tree := fs.String("tree", "rtree", "index structure: rtree, tb, str, or ntree")
	sync := fs.String("sync", "always", "fsync policy: always, grouped, or off")
	return fs, dir, tree, sync
}

func parseKind(tree string) mstsearch.IndexKind {
	kind, err := mstsearch.ParseIndexKind(tree)
	fail(err)
	return kind
}

func parseSync(s string) mstsearch.SyncMode {
	switch s {
	case "grouped":
		return mstsearch.SyncGrouped
	case "off":
		return mstsearch.SyncOff
	default:
		return mstsearch.SyncAlways
	}
}

// open opens the store, resolving the index kind from the directory when
// it already holds a checkpoint under a different kind than requested.
func open(dir string, kind mstsearch.IndexKind, mode mstsearch.SyncMode) (*mstsearch.DB, mstsearch.IndexKind) {
	opts := mstsearch.DurableOptions{Sync: mode}
	db, err := mstsearch.OpenDurable(dir, kind, opts)
	if errors.Is(err, mstsearch.ErrSnapshotKind) {
		for _, k := range mstsearch.IndexKinds() {
			if k == kind {
				continue
			}
			if db, err = mstsearch.OpenDurable(dir, k, opts); err == nil {
				kind = k
				break
			}
		}
	}
	fail(err)
	return db, kind
}

func runIngest(args []string) {
	fs, dir, tree, sync := storeFlags("ingest")
	data := fs.String("data", "", "dataset CSV to ingest (required)")
	fs.Parse(args)
	requireDir(*dir)
	if *data == "" {
		fail(fmt.Errorf("-data is required"))
	}
	db, kind := open(*dir, parseKind(*tree), parseSync(*sync))
	trajs := readCSV(*data)
	added := 0
	for i := range trajs {
		if err := db.Add(trajs[i]); err != nil {
			fail(fmt.Errorf("trajectory %d: %w", trajs[i].ID, err))
		}
		added++
	}
	fail(db.Close())
	fmt.Printf("ingested %d trajectories into %s (%s, durable)\n", added, *dir, kind)
}

// runAppend streams location updates into existing trajectories: each
// CSV trajectory's samples are appended to the stored trajectory with
// the same ID.
func runAppend(args []string) {
	fs, dir, tree, sync := storeFlags("append")
	data := fs.String("data", "", "updates CSV (required)")
	fs.Parse(args)
	requireDir(*dir)
	if *data == "" {
		fail(fmt.Errorf("-data is required"))
	}
	db, _ := open(*dir, parseKind(*tree), parseSync(*sync))
	updates := readCSV(*data)
	n := 0
	for i := range updates {
		for _, s := range updates[i].Samples {
			if err := db.AppendSample(updates[i].ID, s); err != nil {
				fail(fmt.Errorf("trajectory %d: %w", updates[i].ID, err))
			}
			n++
		}
	}
	fail(db.Close())
	fmt.Printf("appended %d samples across %d trajectories\n", n, len(updates))
}

func runCheckpoint(args []string) {
	fs, dir, tree, sync := storeFlags("checkpoint")
	fs.Parse(args)
	requireDir(*dir)
	db, _ := open(*dir, parseKind(*tree), parseSync(*sync))
	fail(db.Checkpoint())
	fail(db.Close())
	fmt.Printf("checkpointed %s\n", *dir)
}

func runInfo(args []string) {
	fs, dir, tree, sync := storeFlags("info")
	fs.Parse(args)
	requireDir(*dir)
	db, kind := open(*dir, parseKind(*tree), parseSync(*sync))
	defer db.Close()
	segs, err := wal.Segments(*dir)
	fail(err)
	var logBytes int64
	for _, s := range segs {
		if st, err := os.Stat(filepath.Join(*dir, s.Name)); err == nil {
			logBytes += st.Size()
		}
	}
	fmt.Printf("store:        %s\n", *dir)
	fmt.Printf("index:        %s (%.2f MB)\n", kind, db.IndexSizeMB())
	fmt.Printf("trajectories: %d (%d segments)\n", db.Len(), db.NumSegments())
	fmt.Printf("wal:          %d segment file(s), %d bytes\n", len(segs), logBytes)
}

func runQuery(args []string) {
	fs, dir, tree, sync := storeFlags("query")
	queryID := fs.Uint("queryid", 0, "stored trajectory to use as the query (required)")
	k := fs.Int("k", 1, "number of results")
	fs.Parse(args)
	requireDir(*dir)
	if *queryID == 0 {
		fail(fmt.Errorf("-queryid is required"))
	}
	db, _ := open(*dir, parseKind(*tree), parseSync(*sync))
	defer db.Close()
	q := db.Get(mstsearch.ID(*queryID))
	if q == nil {
		fail(fmt.Errorf("trajectory %d not in store", *queryID))
	}
	qc := q.Clone()
	qc.ID = 0
	resp, err := db.Query(context.Background(), mstsearch.Request{
		Q:        &qc,
		Interval: mstsearch.Interval{T1: qc.StartTime(), T2: qc.EndTime()},
		K:        *k,
		Options:  mstsearch.DefaultOptions(),
	})
	fail(err)
	fmt.Printf("k=%d MST over [%g, %g]: %d results\n", *k, qc.StartTime(), qc.EndTime(), len(resp.Results))
	for i, r := range resp.Results {
		fmt.Printf("%2d. trajectory %-6d DISSIM = %.6f\n", i+1, r.TrajID, r.Dissim)
	}
}

// openCluster opens an existing cluster, taking (kind, shards, placement,
// replicas) from the manifest so the operator never has to repeat
// cluster-init's flags on later subcommands.
func openCluster(dir, sync string) *shard.Cluster {
	kind, n, placeName, replicas, err := shard.ReadManifest(dir)
	if err != nil {
		fail(fmt.Errorf("not a cluster directory (run cluster-init first): %w", err))
	}
	place, err := shard.PlacementByName(placeName)
	fail(err)
	c, err := shard.Open(dir, kind, n, place, shard.Options{
		Replicas: replicas,
		Durable:  mstsearch.DurableOptions{Sync: parseSync(sync)},
	})
	fail(err)
	return c
}

// runClusterInit creates an empty durable cluster: N shard directories
// (each with R replica subdirectories when -replicas > 1) plus the
// manifest pinning (kind, shards, placement, replicas).
func runClusterInit(args []string) {
	fs, dir, tree, sync := storeFlags("cluster-init")
	shards := fs.Int("shards", 2, "number of shards")
	replicas := fs.Int("replicas", 1, "replicas per shard")
	placement := fs.String("placement", "hash", "placement policy: hash or spatial")
	fs.Parse(args)
	requireDir(*dir)
	place, err := shard.PlacementByName(*placement)
	fail(err)
	c, err := shard.Open(*dir, parseKind(*tree), *shards, place, shard.Options{
		Replicas: *replicas,
		Durable:  mstsearch.DurableOptions{Sync: parseSync(*sync)},
	})
	fail(err)
	fail(c.Close())
	fmt.Printf("initialized cluster %s: %d shards x %d replica(s), %s placement, %s index\n",
		*dir, *shards, c.NumReplicas(), *placement, parseKind(*tree))
}

// runClusterIngest scatters a CSV dataset across the cluster's shards
// under its placement policy, journaling each trajectory on its shard.
func runClusterIngest(args []string) {
	fs, dir, _, sync := storeFlags("cluster-ingest")
	data := fs.String("data", "", "dataset CSV to ingest (required)")
	fs.Parse(args)
	requireDir(*dir)
	if *data == "" {
		fail(fmt.Errorf("-data is required"))
	}
	c := openCluster(*dir, *sync)
	trajs := readCSV(*data)
	for i := range trajs {
		if err := c.Add(trajs[i]); err != nil {
			fail(fmt.Errorf("trajectory %d: %w", trajs[i].ID, err))
		}
	}
	fail(c.Close())
	fmt.Printf("ingested %d trajectories into %d shards\n", len(trajs), c.NumShards())
}

// runClusterInfo prints the manifest plus each shard's share of the data,
// and — on a replicated cluster — every replica's health.
func runClusterInfo(args []string) {
	fs, dir, _, sync := storeFlags("cluster-info")
	fs.Parse(args)
	requireDir(*dir)
	kind, n, placeName, replicas, err := shard.ReadManifest(*dir)
	fail(err)
	c := openCluster(*dir, *sync)
	defer c.Close()
	fmt.Printf("cluster:      %s\n", *dir)
	fmt.Printf("index:        %s\n", kind)
	fmt.Printf("placement:    %s\n", placeName)
	fmt.Printf("shards:       %d\n", n)
	fmt.Printf("replicas:     %d\n", replicas)
	fmt.Printf("trajectories: %d (%d segments)\n", c.Len(), c.NumSegments())
	for i := 0; i < c.NumShards(); i++ {
		db := c.Shard(i)
		fmt.Printf("  shard %3d:  %d trajectories, %d segments\n", i, db.Len(), db.NumSegments())
	}
	if replicas > 1 {
		for _, st := range c.ReplicaStatuses() {
			line := fmt.Sprintf("  shard %3d replica %d: %-11s %d trajectories", st.Shard, st.Replica, st.State, st.Trajectories)
			if st.LastError != "" {
				line += " (last error: " + st.LastError + ")"
			}
			fmt.Println(line)
		}
	}
}

// runVerify scrubs a store — or every shard/replica store of a cluster —
// offline, re-checking every snapshot and live WAL frame CRC the next
// recovery would trust, and prints a machine-readable JSON report. Exits
// 1 when any store is damaged.
func runVerify(args []string) {
	fs := flag.NewFlagSet("mststore verify", flag.ExitOnError)
	dir := fs.String("dir", "", "store or cluster directory (required)")
	fs.Parse(args)
	requireDir(*dir)

	dirs, err := shard.StoreDirs(*dir)
	if err != nil {
		// No cluster manifest: treat dir as a single store.
		dirs = []string{*dir}
	}
	out := struct {
		Stores  []*mstsearch.ScrubReport `json:"stores"`
		Damaged bool                     `json:"damaged"`
	}{}
	for _, d := range dirs {
		rep, err := mstsearch.ScrubStore(d)
		if err != nil {
			rep = &mstsearch.ScrubReport{
				Dir:      d,
				Findings: []mstsearch.ScrubFinding{{File: d, Problem: err.Error()}},
			}
		}
		out.Damaged = out.Damaged || rep.Damaged()
		out.Stores = append(out.Stores, rep)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	fail(enc.Encode(out))
	if out.Damaged {
		os.Exit(1)
	}
}

// runClusterQuery answers a k-MST query by scatter-gather over the
// cluster, reporting how many shards the coordinator pruned.
func runClusterQuery(args []string) {
	fs, dir, _, sync := storeFlags("cluster-query")
	queryID := fs.Uint("queryid", 0, "stored trajectory to use as the query (required)")
	k := fs.Int("k", 1, "number of results")
	p := fs.Float64("p", 1, "fraction of the query's lifetime to search, from the start (0, 1]")
	fs.Parse(args)
	requireDir(*dir)
	if *queryID == 0 {
		fail(fmt.Errorf("-queryid is required"))
	}
	if *p <= 0 || *p > 1 {
		fail(fmt.Errorf("-p must be in (0, 1], got %g", *p))
	}
	c := openCluster(*dir, *sync)
	defer c.Close()
	q := c.Get(mstsearch.ID(*queryID))
	if q == nil {
		fail(fmt.Errorf("trajectory %d not in cluster", *queryID))
	}
	qc := q.Clone()
	if *p < 1 {
		t1 := qc.StartTime()
		t2 := t1 + (qc.EndTime()-t1)**p
		sl, ok := qc.Slice(t1, t2)
		if !ok {
			fail(fmt.Errorf("trajectory %d has no samples in [%g, %g]", *queryID, t1, t2))
		}
		qc = sl.Clone()
	}
	qc.ID = 0
	resp, qs, err := c.QueryShards(context.Background(), mstsearch.Request{
		Q:        &qc,
		Interval: mstsearch.Interval{T1: qc.StartTime(), T2: qc.EndTime()},
		K:        *k,
		Options:  mstsearch.DefaultOptions(),
	})
	fail(err)
	fmt.Printf("k=%d MST over [%g, %g]: %d results (%d shards searched, %d pruned)\n",
		*k, qc.StartTime(), qc.EndTime(), len(resp.Results), qs.Fanout, qs.Pruned)
	for i, r := range resp.Results {
		fmt.Printf("%2d. trajectory %-6d DISSIM = %.6f\n", i+1, r.TrajID, r.Dissim)
	}
}

func requireDir(dir string) {
	if dir == "" {
		fail(fmt.Errorf("-dir is required"))
	}
}

func readCSV(path string) []mstsearch.Trajectory {
	f, err := os.Open(path)
	fail(err)
	defer f.Close()
	trajs, err := mstsearch.ReadTrajectoriesCSV(f)
	fail(err)
	return trajs
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mststore:", err)
		os.Exit(1)
	}
}
