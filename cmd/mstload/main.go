// Command mstload drives load against a running mstserve and reports
// latency and throughput in the same JSON shape the benchmark results
// use (results/BENCH_*.json): a closed-loop pool of workers issues k-MST
// queries for a fixed duration, recording per-request latency, shed and
// degraded counts, then writes percentiles and queries/s.
//
// Usage:
//
//	mstserve -synthetic 200 -addr :8080 &
//	mstload -addr http://127.0.0.1:8080 -workers 16 -duration 30s -o results/BENCH_PR6.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mstsearch/internal/server"
)

// result mirrors cmd/benchjson's Result so load numbers diff cleanly
// against the checked-in benchmark documents.
type result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

type report struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []result `json:"results"`
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "server base URL")
		workers  = flag.Int("workers", 16, "concurrent closed-loop workers")
		duration = flag.Duration("duration", 30*time.Second, "load duration")
		k        = flag.Int("k", 5, "k per query")
		seed     = flag.Int64("seed", 1, "query workload seed")
		name     = flag.String("name", "LoadSmoke", "result name")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	cl := &server.Client{BaseURL: *addr, Tenant: "mstload", MaxAttempts: 3}
	if _, err := cl.Health(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "mstload: server not healthy:", err)
		os.Exit(1)
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		shed      atomic.Int64
		degraded  atomic.Int64
		failed    atomic.Int64
	)
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			for ctx.Err() == nil {
				req := randomQuery(rng, *k)
				t0 := time.Now()
				resp, err := cl.Query(ctx, req)
				lat := time.Since(t0)
				if err != nil {
					var apiErr *server.APIError
					switch {
					case errors.As(err, &apiErr) && apiErr.Status == 429:
						shed.Add(1)
					case ctx.Err() != nil:
						// driver shutting down, not a server failure
					default:
						failed.Add(1)
					}
					continue
				}
				if resp.Degraded {
					degraded.Add(1)
				}
				mu.Lock()
				latencies = append(latencies, lat)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if len(latencies) == 0 {
		fmt.Fprintln(os.Stderr, "mstload: no successful queries")
		os.Exit(1)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p := func(q float64) time.Duration {
		i := int(q * float64(len(latencies)-1))
		return latencies[i]
	}
	var total time.Duration
	for _, l := range latencies {
		total += l
	}

	rep := report{
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Results: []result{{
			Name:       fmt.Sprintf("%s/workers=%d", *name, *workers),
			Package:    "mstsearch/internal/server",
			Iterations: int64(len(latencies)),
			NsPerOp:    float64(total.Nanoseconds()) / float64(len(latencies)),
			Extra: map[string]float64{
				"queries_per_s": float64(len(latencies)) / elapsed.Seconds(),
				"p50_ms":        float64(p(0.50).Microseconds()) / 1000,
				"p90_ms":        float64(p(0.90).Microseconds()) / 1000,
				"p99_ms":        float64(p(0.99).Microseconds()) / 1000,
				"shed":          float64(shed.Load()),
				"degraded":      float64(degraded.Load()),
				"failed":        float64(failed.Load()),
			},
		}},
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mstload:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		_, _ = os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mstload:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mstload: %d queries, %.0f q/s, p50 %.2fms p99 %.2fms, %d shed, %d failed\n",
		len(latencies), rep.Results[0].Extra["queries_per_s"],
		rep.Results[0].Extra["p50_ms"], rep.Results[0].Extra["p99_ms"],
		shed.Load(), failed.Load())
}

// randomQuery synthesizes a short query trajectory inside the unit
// workspace the GSTD fleet lives in. The query interval is anchored on
// the generated sample times themselves — deriving it independently
// leaves the last sample an ulp short of T2 and trips the engine's
// coverage check.
func randomQuery(rng *rand.Rand, k int) server.QueryRequest {
	const samples = 8
	x, y := rng.Float64(), rng.Float64()
	t1 := rng.Float64() * 0.5
	dt := 0.4 / (samples - 1)
	q := server.TrajectoryJSON{ID: 0, Samples: make([][3]float64, samples)}
	for i := 0; i < samples; i++ {
		x += (rng.Float64() - 0.5) * 0.05
		y += (rng.Float64() - 0.5) * 0.05
		q.Samples[i] = [3]float64{x, y, t1 + float64(i)*dt}
	}
	return server.QueryRequest{
		Query: q,
		T1:    q.Samples[0][2], T2: q.Samples[samples-1][2],
		K: k, DeadlineMS: 2000,
	}
}
