// benchjson converts `go test -bench` text output into a stable JSON
// document suitable for checking into results/ and diffing across PRs.
//
// Usage:
//
//	go test -bench 'Fig10|Dissim' -benchmem ./... | go run ./cmd/benchjson -o results/BENCH.json
//
// It reads the benchmark stream on stdin, keeps the environment header
// lines (goos/goarch/pkg/cpu), and parses each Benchmark result line into
// name, parallelism suffix, iteration count, and the standard ns/op,
// B/op, allocs/op metrics plus any custom unit metrics.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Package     string             `json:"package,omitempty"`
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the checked-in document.
type Report struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseResult(line)
			if !ok {
				continue
			}
			r.Package = pkg
			rep.Results = append(rep.Results, r)
		}
	}
	return rep, sc.Err()
}

// parseResult parses "BenchmarkName-8  1234  56.7 ns/op  8 B/op  1 allocs/op
// 9.9 custom/unit" lines; ok is false for lines that only name a benchmark
// (sub-benchmark headers) or fail to parse.
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false
	}
	r := Result{Name: fields[0]}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = procs
			r.Name = r.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = v
		}
	}
	return r, true
}
