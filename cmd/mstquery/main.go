// Command mstquery runs ad-hoc k-Most-Similar-Trajectory queries against a
// CSV dataset ("id,x,y,t" rows, as written by gendata).
//
// The query trajectory comes either from a separate CSV file (-queryfile,
// first trajectory is used) or from the dataset itself (-queryid),
// optionally TD-TR-compressed (-p) to emulate a sketched query. The query
// period defaults to the query trajectory's lifespan.
//
// Example:
//
//	gendata -kind trucks -scale 0.2 -o trucks.csv
//	mstquery -data trucks.csv -queryid 7 -p 0.01 -k 5 -tree tb
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mstsearch"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "dataset CSV (required)")
		queryFile = flag.String("queryfile", "", "query trajectory CSV")
		queryID   = flag.Uint("queryid", 0, "use this dataset trajectory as the query")
		p         = flag.Float64("p", 0, "TD-TR compression ratio applied to the query (0 = none)")
		k         = flag.Int("k", 1, "number of results")
		tree      = flag.String("tree", "rtree", "index structure: rtree, tb, str, or ntree")
		metric    = flag.String("metric", "", "similarity metric: dissim (default), dtw, lcss, or edr (non-dissim needs -tree ntree)")
		eps       = flag.Float64("eps", 0, "match threshold for the lcss and edr metrics")
		from      = flag.Float64("from", 0, "query period start (default: query lifespan)")
		to        = flag.Float64("to", 0, "query period end")
		relaxed   = flag.Bool("relaxed", false, "time-relaxed search: best DISSIM over any time shift")
		explain   = flag.Bool("explain", false, "run the k-MST query with EXPLAIN: cost-model prediction vs. actual work")
		nn        = flag.String("nn", "", "point-NN query instead: \"x,y,t\"")
		rangeQ    = flag.String("range", "", "range query instead: \"minX,minY,maxX,maxY,t1,t2\"")
		topo      = flag.String("topology", "", "topological query instead: \"minX,minY,maxX,maxY,t1,t2\"")
	)
	flag.Parse()
	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "mstquery: -data is required")
		flag.Usage()
		os.Exit(2)
	}

	trajs := readCSV(*dataPath)
	kind, err := mstsearch.ParseIndexKind(*tree)
	fail(err)
	m, err := mstsearch.ParseMetric(*metric)
	fail(err)

	// The non-similarity query modes need no query trajectory.
	if *nn != "" || *rangeQ != "" || *topo != "" {
		db, err := mstsearch.NewDB(kind, trajs)
		fail(err)
		ctx := context.Background()
		switch {
		case *nn != "":
			v := parseFloats(*nn, 3)
			res, err := db.Nearest(ctx, v[0], v[1], v[2], *k)
			fail(err)
			fmt.Printf("%d nearest objects to (%g, %g) at t=%g:\n", *k, v[0], v[1], v[2])
			for i, r := range res {
				fmt.Printf("%2d. trajectory %-6d distance %.4f\n", i+1, r.TrajID, r.Dist)
			}
		case *rangeQ != "":
			v := parseFloats(*rangeQ, 6)
			hits, err := db.Range(ctx, mstsearch.Window{MinX: v[0], MinY: v[1], MaxX: v[2], MaxY: v[3]}, mstsearch.Interval{T1: v[4], T2: v[5]})
			fail(err)
			fmt.Printf("range query: %d segments\n", len(hits))
		default:
			v := parseFloats(*topo, 6)
			rels, err := db.Topology(ctx, mstsearch.Window{MinX: v[0], MinY: v[1], MaxX: v[2], MaxY: v[3]}, mstsearch.Interval{T1: v[4], T2: v[5]})
			fail(err)
			for _, r := range rels {
				fmt.Printf("trajectory %-6d %-8s inside for %.4f\n",
					r.TrajID, r.Relation, r.InsideDuration)
			}
		}
		return
	}

	var q mstsearch.Trajectory
	switch {
	case *queryFile != "":
		qs := readCSV(*queryFile)
		if len(qs) == 0 {
			fail(fmt.Errorf("query file %s holds no trajectory", *queryFile))
		}
		q = qs[0]
	case *queryID != 0:
		found := false
		for i := range trajs {
			if trajs[i].ID == mstsearch.ID(*queryID) {
				q = trajs[i].Clone()
				found = true
				break
			}
		}
		if !found {
			fail(fmt.Errorf("trajectory %d not in dataset", *queryID))
		}
	default:
		fail(fmt.Errorf("one of -queryfile or -queryid is required"))
	}
	if *p > 0 {
		orig := len(q.Samples)
		q = mstsearch.CompressTDTR(&q, *p)
		fmt.Printf("query compressed with TD-TR p=%.2f%%: %d -> %d samples\n",
			*p*100, orig, len(q.Samples))
	}
	q.ID = 0

	db, err := mstsearch.NewDB(kind, trajs)
	fail(err)
	fmt.Printf("indexed %d trajectories / %d segments in a %s (%.2f MB)\n",
		db.Len(), db.NumSegments(), kind, db.IndexSizeMB())

	if *relaxed {
		res, err := db.Relaxed(context.Background(), &q, *k)
		fail(err)
		fmt.Printf("time-relaxed k=%d MST: %d results\n", *k, len(res))
		for i, r := range res {
			fmt.Printf("%2d. trajectory %-6d DISSIM = %.6f at time offset %+.4f\n",
				i+1, r.TrajID, r.Dissim, r.Offset)
		}
		return
	}

	t1, t2 := *from, *to
	if t1 == 0 && t2 == 0 {
		t1, t2 = q.StartTime(), q.EndTime()
	}
	req := mstsearch.Request{
		Q:         &q,
		Interval:  mstsearch.Interval{T1: t1, T2: t2},
		K:         *k,
		Metric:    m,
		MetricEps: *eps,
		Options:   mstsearch.DefaultOptions(),
	}
	if *explain {
		rep, err := db.Explain(context.Background(), req)
		fail(err)
		fmt.Print(rep)
		return
	}
	resp, err := db.Query(context.Background(), req)
	fail(err)
	res, stats := resp.Results, resp.Stats

	fmt.Printf("k=%d MST (%s) over [%g, %g]: %d results, pruning %.1f%%, %d/%d nodes, %d page reads\n",
		*k, m, t1, t2, len(res), stats.PruningPower*100,
		stats.NodesAccessed, stats.TotalNodes, stats.PageReads)
	for i, r := range res {
		fmt.Printf("%2d. trajectory %-6d %s = %.6f\n", i+1, r.TrajID, m, r.Dissim)
	}
}

func readCSV(path string) []mstsearch.Trajectory {
	f, err := os.Open(path)
	fail(err)
	defer f.Close()
	trajs, err := mstsearch.ReadTrajectoriesCSV(f)
	fail(err)
	return trajs
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mstquery:", err)
		os.Exit(1)
	}
}

// parseFloats splits a comma-separated list into exactly n floats.
func parseFloats(s string, n int) []float64 {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		fail(fmt.Errorf("expected %d comma-separated numbers, got %q", n, s))
	}
	out := make([]float64, n)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			fail(fmt.Errorf("bad number %q: %v", p, err))
		}
		out[i] = v
	}
	return out
}
