// Command mstbench regenerates the tables and figures of the paper's
// experimental study (§5). Each experiment prints an aligned text table
// whose rows correspond to the published plot/table.
//
// Usage:
//
//	mstbench -exp table2|fig8|fig9|q1|q2|q3|ablation|batch|shard|explain|index-compare|all [flags]
//
// The default flags run a scaled-down study that finishes in minutes;
// -paper switches to the published scale (273 trucks / 112K segments for
// the quality study; S0100…S1000 with ~2000 samples per object and 500
// queries per setting for the performance study).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"mstsearch"
	"mstsearch/internal/experiments"
	"mstsearch/internal/shard"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table2, fig8, fig9, q1, q2, q3, ablation, batch, shard, explain, index-compare or all")
		jsonOut = flag.String("json", "", "write the index-compare report as benchjson-shaped JSON to this path")
		paper   = flag.Bool("paper", false, "run at the paper's full scale (slow)")
		scale   = flag.Float64("scale", 0.25, "Trucks dataset scale in (0,1] for fig8/fig9/table2")
		samples = flag.Int("samples", 501, "samples per synthetic object (paper: 2001)")
		queries = flag.Int("queries", 50, "queries per performance setting (paper: 500)")
		qf      = flag.Int("qualityqueries", 40, "queries per fig9 p-value (0 = all trajectories)")
		seed    = flag.Int64("seed", 2007, "generator seed")
		verbose = flag.Bool("v", false, "print progress")
		withSTR = flag.Bool("str", false, "add the STR-tree as a third series in Q1-Q3")
	)
	flag.Parse()

	if *paper {
		*scale = 1
		*samples = 2001
		*queries = 500
		*qf = 0
	}

	run := func(name string) bool { return *exp == "all" || strings.EqualFold(*exp, name) }
	progress := func(string) {}
	if *verbose {
		progress = func(s string) { fmt.Fprintln(os.Stderr, "# "+s) }
	}

	any := false
	if run("table2") {
		any = true
		cards := []int{100, 250, 500, 1000}
		if !*paper {
			cards = []int{25, 50, 100, 200}
			fmt.Printf("(scaled: cardinalities %v, %d samples/object — use -paper for S0100..S1000)\n", cards, *samples)
		}
		rows, err := experiments.RunTable2(cards, *samples, *scale, *seed)
		fail(err)
		experiments.PrintTable2(os.Stdout, rows)
		fmt.Println()
	}
	if run("fig8") {
		any = true
		rows := experiments.RunCompression(experiments.QualityConfig{Scale: *scale, Seed: *seed})
		experiments.PrintCompression(os.Stdout, rows)
		fmt.Println()
	}
	if run("fig9") {
		any = true
		rows := experiments.RunQuality(experiments.QualityConfig{
			Scale:      *scale,
			NumQueries: *qf,
			Seed:       *seed,
		})
		experiments.PrintQuality(os.Stdout, rows)
		fmt.Println()
	}
	if run("batch") {
		any = true
		card, nq := 50, *queries
		if *paper {
			card = 500
		}
		runBatchExperiment(card, *samples, nq, *seed)
		fmt.Println()
	}
	if run("shard") {
		any = true
		card, nq := 50, *queries
		if *paper {
			card = 500
		}
		runShardExperiment(card, *samples, nq, *seed)
		fmt.Println()
	}
	if run("explain") {
		any = true
		card := 50
		if *paper {
			card = 500
		}
		runExplainExperiment(card, *samples, *queries, *seed)
		fmt.Println()
	}
	if run("index-compare") {
		any = true
		card, nq := 50, *queries
		if *paper {
			card = 500
		}
		runIndexCompareExperiment(card, *samples, nq, *seed, *jsonOut)
		fmt.Println()
	}
	if run("ablation") {
		any = true
		card := 100
		if *paper {
			card = 500
		}
		rows, err := experiments.RunAblation(experiments.PerfConfig{
			SamplesPerObject: *samples,
			Seed:             *seed,
		}, card, *queries, 0.05)
		fail(err)
		experiments.PrintAblation(os.Stdout, rows)
		fmt.Println()
	}
	perf := experiments.NewRunner(experiments.PerfConfig{
		SamplesPerObject: *samples,
		NumQueries:       *queries,
		Seed:             *seed,
		IncludeSTRTree:   *withSTR,
	})
	perf.Progress = progress
	for _, qs := range experiments.PaperQuerySettings() {
		if !run(qs.Name) {
			continue
		}
		any = true
		if !*paper && qs.Name == "Q1" {
			qs.Cardinalities = []int{25, 50, 100, 200}
			fmt.Printf("(scaled: cardinalities %v — use -paper for S0100..S1000)\n", qs.Cardinalities)
		}
		if !*paper && (qs.Name == "Q2" || qs.Name == "Q3") {
			qs.Cardinalities = []int{100}
		}
		rows, err := perf.Run(qs)
		fail(err)
		experiments.PrintPerf(os.Stdout, qs.Name, rows)
		fmt.Println()
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

// runBatchExperiment measures KMostSimilarBatch throughput across worker
// counts on a Fig. 10 Q1-shaped workload (5% windows, k = 1) with the warm
// shared buffer enabled. It lives here rather than internal/experiments
// because it drives the public facade (the experiments package sits below
// it in the import graph). Speedup is relative to the one-worker leg; on a
// single-CPU machine expect ~1.0× across the board.
func runBatchExperiment(card, samples, nq int, seed int64) {
	data := experiments.SyntheticDataset(card, samples, seed)
	db, err := mstsearch.NewDB(mstsearch.RTree3D, data.Trajs)
	fail(err)
	db.EnableWarmBuffer()

	rng := rand.New(rand.NewSource(seed))
	queries := make([]mstsearch.BatchQuery, nq)
	held := make([]mstsearch.Trajectory, nq)
	for i := range queries {
		src := &data.Trajs[rng.Intn(len(data.Trajs))]
		t1 := rng.Float64() * 0.9
		t2 := t1 + 0.05
		sl, ok := src.Slice(t1, t2)
		if !ok {
			fail(fmt.Errorf("batch: query window [%g, %g] outside dataset span", t1, t2))
		}
		held[i] = sl.Clone()
		held[i].ID = 0
		queries[i] = mstsearch.BatchQuery{Q: &held[i], T1: t1, T2: t2, K: 1}
	}

	opts := mstsearch.Options{ExactRefine: true, Refine: 1}
	// Untimed warmup so every leg sees the same buffer state.
	for _, br := range db.KMostSimilarBatch(context.Background(), queries, opts) {
		fail(br.Err)
	}

	fmt.Printf("Batch k-MST executor: S%04d, %d samples/object, %d queries (5%% windows, k=1), GOMAXPROCS=%d\n",
		card, samples, nq, runtime.GOMAXPROCS(0))
	fmt.Println("workers   total(ms)   queries/s   speedup")
	var base float64
	for _, par := range []int{1, 2, 4, 8} {
		o := opts
		o.Parallelism = par
		start := time.Now()
		for _, br := range db.KMostSimilarBatch(context.Background(), queries, o) {
			fail(br.Err)
		}
		elapsed := time.Since(start)
		qps := float64(nq) / elapsed.Seconds()
		if par == 1 {
			base = qps
		}
		fmt.Printf("%7d %11.2f %11.0f %8.2fx\n", par, float64(elapsed.Microseconds())/1000, qps, qps/base)
	}
}

// runShardExperiment measures scatter-gather k-MST across shard counts
// and placement policies on the Fig. 10 Q1-shaped workload (5% windows,
// k = 1): per-setting throughput plus the coordinator's gather profile —
// how many shards each query actually searched and how many were pruned
// on their root lower bound without being touched. Spatial placement
// co-locates nearby trajectories, so localized queries prune most of the
// cluster; hash placement spreads them, so the fanout stays wide. Like
// the batch experiment it drives the public facade and lives here rather
// than in internal/experiments.
func runShardExperiment(card, samples, nq int, seed int64) {
	data := experiments.SyntheticDataset(card, samples, seed)
	rng := rand.New(rand.NewSource(seed))
	type workItem struct {
		q      mstsearch.Trajectory
		t1, t2 float64
	}
	work := make([]workItem, nq)
	for i := range work {
		src := &data.Trajs[rng.Intn(len(data.Trajs))]
		t1 := rng.Float64() * 0.9
		t2 := t1 + 0.05
		sl, ok := src.Slice(t1, t2)
		if !ok {
			fail(fmt.Errorf("shard: query window [%g, %g] outside dataset span", t1, t2))
		}
		work[i].q = sl.Clone()
		work[i].q.ID = 0
		work[i].t1, work[i].t2 = t1, t2
	}

	fmt.Printf("Sharded k-MST scatter-gather: S%04d, %d samples/object, %d queries (5%% windows, k=1), GOMAXPROCS=%d\n",
		card, samples, nq, runtime.GOMAXPROCS(0))
	fmt.Println("shards   placement   total(ms)   queries/s   avg fanout   avg pruned")
	for _, n := range []int{1, 2, 4, 8} {
		for _, placeName := range []string{"hash", "spatial"} {
			place, err := shard.PlacementByName(placeName)
			fail(err)
			c, err := shard.New(mstsearch.RTree3D, n, place, shard.Options{})
			fail(err)
			for i := range data.Trajs {
				fail(c.Add(data.Trajs[i]))
			}
			c.EnableWarmBuffer()
			opts := mstsearch.Options{ExactRefine: true, Refine: 1}
			// Untimed warmup so every leg measures the same buffer state.
			for _, w := range work {
				if _, err := c.Query(context.Background(), mstsearch.Request{
					Q: &w.q, Interval: mstsearch.Interval{T1: w.t1, T2: w.t2}, K: 1, Options: opts,
				}); err != nil {
					fail(err)
				}
			}
			var fanout, pruned int
			start := time.Now()
			for _, w := range work {
				_, qs, err := c.QueryShards(context.Background(), mstsearch.Request{
					Q: &w.q, Interval: mstsearch.Interval{T1: w.t1, T2: w.t2}, K: 1, Options: opts,
				})
				fail(err)
				fanout += qs.Fanout
				pruned += qs.Pruned
			}
			elapsed := time.Since(start)
			fmt.Printf("%6d %11s %11.2f %11.0f %12.2f %12.2f\n",
				n, placeName, float64(elapsed.Microseconds())/1000,
				float64(nq)/elapsed.Seconds(),
				float64(fanout)/float64(nq), float64(pruned)/float64(nq))
		}
	}
}

// runExplainExperiment validates the selectivity cost model against the
// observability layer on a GSTD fleet: each query runs under DB.Explain
// and the table compares the model's predicted leaf I/O with the leaf
// pages the traced search actually touched. The last query's full EXPLAIN
// transcript follows the table. Like the batch experiment it drives the
// public facade, so it lives here rather than in internal/experiments.
func runExplainExperiment(card, samples, nq int, seed int64) {
	data := experiments.SyntheticDataset(card, samples, seed)
	db, err := mstsearch.NewDB(mstsearch.RTree3D, data.Trajs)
	fail(err)
	db.EnableWarmBuffer()

	fmt.Printf("EXPLAIN vs. cost model: GSTD S%04d, %d samples/object, %d queries (5%% windows, k=5)\n",
		card, samples, nq)
	fmt.Println("query   predLeaf   actLeaf   nodes   pruned%   events   latency")
	rng := rand.New(rand.NewSource(seed))
	var last *mstsearch.ExplainReport
	for i := 0; i < nq; i++ {
		src := &data.Trajs[rng.Intn(len(data.Trajs))]
		t1 := rng.Float64() * 0.9
		t2 := t1 + 0.05
		sl, ok := src.Slice(t1, t2)
		if !ok {
			fail(fmt.Errorf("explain: query window [%g, %g] outside dataset span", t1, t2))
		}
		q := sl.Clone()
		q.ID = 0
		rep, err := db.Explain(context.Background(), mstsearch.Request{
			Q:        &q,
			Interval: mstsearch.Interval{T1: t1, T2: t2},
			K:        5,
			Options:  mstsearch.DefaultOptions(),
		})
		fail(err)
		fmt.Printf("%5d %10.1f %9d %7d %8.1f %8d %9s\n",
			i+1, rep.Estimate.ExpectedLeafPages, rep.Stats.LeavesAccessed,
			rep.Stats.NodesAccessed, rep.Stats.PruningPower*100,
			rep.Trace.Events, rep.Duration.Round(time.Microsecond))
		last = rep
	}
	fmt.Println("\nlast query's transcript:")
	fmt.Print(last)
}

// benchResult and benchReport mirror cmd/benchjson's document shape so
// the index-compare report diffs cleanly against `go test -bench` runs
// converted by that tool.
type benchResult struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

type benchReport struct {
	GOOS    string        `json:"goos,omitempty"`
	GOARCH  string        `json:"goarch,omitempty"`
	Results []benchResult `json:"results"`
}

// runIndexCompareExperiment races every registered index kind on the same
// workload: a k-MST (DISSIM) leg all four kinds serve, then an exact DTW
// kNN leg only the metric kind can answer (MBB geometry cannot lower-bound
// DTW, so the R-tree family rejects it as a bad query) — that leg is
// priced against a brute-force linear scan and the answers are checked
// against it. Per-kind node accesses, pruning power, and page I/O come
// from the engine's own SearchStats. With jsonPath set, the table is also
// written as a benchjson-shaped document (results/BENCH_PR9.json in CI).
func runIndexCompareExperiment(card, samples, nq int, seed int64, jsonPath string) {
	data := experiments.SyntheticDataset(card, samples, seed)
	rng := rand.New(rand.NewSource(seed))
	type workItem struct {
		q      mstsearch.Trajectory
		t1, t2 float64
	}
	work := make([]workItem, nq)
	for i := range work {
		src := &data.Trajs[rng.Intn(len(data.Trajs))]
		t1 := rng.Float64() * 0.9
		t2 := t1 + 0.05
		sl, ok := src.Slice(t1, t2)
		if !ok {
			fail(fmt.Errorf("index-compare: query window [%g, %g] outside dataset span", t1, t2))
		}
		work[i].q = sl.Clone()
		work[i].q.ID = 0
		work[i].t1, work[i].t2 = t1, t2
	}
	rep := &benchReport{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	slug := func(kind mstsearch.IndexKind) string {
		return strings.ReplaceAll(kind.String(), " ", "_")
	}

	fmt.Printf("Index head-to-head: S%04d, %d samples/object, %d queries (5%% windows, k=5)\n", card, samples, nq)
	fmt.Println("k-MST (DISSIM) leg:")
	fmt.Println("kind          total(ms)   queries/s    nodes/q   pruned%    leaf/q   reads/q")
	opts := mstsearch.Options{ExactRefine: true, Refine: 1}
	dbs := make(map[mstsearch.IndexKind]*mstsearch.DB)
	for _, kind := range mstsearch.IndexKinds() {
		db, err := mstsearch.NewDB(kind, data.Trajs)
		fail(err)
		db.EnableWarmBuffer()
		dbs[kind] = db
		// Untimed warmup so every kind measures the same buffer state.
		for _, w := range work {
			_, err := db.Query(context.Background(), mstsearch.Request{
				Q: &w.q, Interval: mstsearch.Interval{T1: w.t1, T2: w.t2}, K: 5, Options: opts,
			})
			fail(err)
		}
		var nodes, leaves int
		var reads uint64
		var pruned float64
		start := time.Now()
		for _, w := range work {
			resp, err := db.Query(context.Background(), mstsearch.Request{
				Q: &w.q, Interval: mstsearch.Interval{T1: w.t1, T2: w.t2}, K: 5, Options: opts,
			})
			fail(err)
			nodes += resp.Stats.NodesAccessed
			leaves += resp.Stats.LeavesAccessed
			reads += resp.Stats.PageReads
			pruned += resp.Stats.PruningPower
		}
		elapsed := time.Since(start)
		fq := float64(nq)
		fmt.Printf("%-12s %10.2f %11.0f %10.1f %9.1f %9.1f %9.1f\n",
			kind, float64(elapsed.Microseconds())/1000, fq/elapsed.Seconds(),
			float64(nodes)/fq, pruned/fq*100, float64(leaves)/fq, float64(reads)/fq)
		rep.Results = append(rep.Results, benchResult{
			Name: "IndexCompare/kMST/kind=" + slug(kind), Package: "mstsearch",
			Iterations: int64(nq), NsPerOp: float64(elapsed.Nanoseconds()) / fq,
			Extra: map[string]float64{
				"nodes/q": float64(nodes) / fq, "pruned%": pruned / fq * 100,
				"leaf/q": float64(leaves) / fq, "reads/q": float64(reads) / fq,
				"queries/s": fq / elapsed.Seconds(),
			},
		})
	}

	fmt.Println("\nexact DTW kNN leg (k=5, same windows):")
	fmt.Println("kind          total(ms)   queries/s    nodes/q   evals/q   matches-linear")
	// Brute-force baseline: every query evaluates DTW against every stored
	// trajectory. Its answers are the ground truth the index leg must hit.
	type ranked struct {
		id mstsearch.ID
		d  float64
	}
	truth := make([][]ranked, nq)
	linStart := time.Now()
	for i, w := range work {
		var all []ranked
		for j := range data.Trajs {
			d, ok := mstsearch.MetricDistance(mstsearch.MetricDTW, 0, &w.q, &data.Trajs[j], w.t1, w.t2)
			if !ok {
				continue
			}
			all = append(all, ranked{data.Trajs[j].ID, d})
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].d != all[b].d {
				return all[a].d < all[b].d
			}
			return all[a].id < all[b].id
		})
		if len(all) > 5 {
			all = all[:5]
		}
		truth[i] = all
	}
	linElapsed := time.Since(linStart)
	fmt.Printf("%-12s %10.2f %11.0f %10s %9.1f %16s\n",
		"linear scan", float64(linElapsed.Microseconds())/1000,
		float64(nq)/linElapsed.Seconds(), "-", float64(card), "(baseline)")
	rep.Results = append(rep.Results, benchResult{
		Name: "IndexCompare/exactDTW/kind=linear_scan", Package: "mstsearch",
		Iterations: int64(nq), NsPerOp: float64(linElapsed.Nanoseconds()) / float64(nq),
		Extra:      map[string]float64{"evals/q": float64(card), "queries/s": float64(nq) / linElapsed.Seconds()},
	})
	for _, kind := range mstsearch.IndexKinds() {
		db := dbs[kind]
		if !kind.Metric() {
			_, err := db.Query(context.Background(), mstsearch.Request{
				Q: &work[0].q, Interval: mstsearch.Interval{T1: work[0].t1, T2: work[0].t2},
				K: 5, Metric: mstsearch.MetricDTW, Options: opts,
			})
			if err == nil {
				fail(fmt.Errorf("index-compare: %s accepted a DTW query; expected rejection", kind))
			}
			fmt.Printf("%-12s %10s %11s %10s %9s   unsupported (MBB cannot bound DTW)\n", kind, "-", "-", "-", "-")
			continue
		}
		var nodes, evals, mismatches int
		start := time.Now()
		for i, w := range work {
			resp, err := db.Query(context.Background(), mstsearch.Request{
				Q: &w.q, Interval: mstsearch.Interval{T1: w.t1, T2: w.t2},
				K: 5, Metric: mstsearch.MetricDTW, Options: opts,
			})
			fail(err)
			nodes += resp.Stats.NodesAccessed
			evals += resp.Stats.ExactRefined
			if len(resp.Results) != len(truth[i]) {
				mismatches++
				continue
			}
			for j, r := range resp.Results {
				if r.TrajID != truth[i][j].id || r.Dissim != truth[i][j].d {
					mismatches++
					break
				}
			}
		}
		elapsed := time.Since(start)
		fq := float64(nq)
		match := "yes"
		if mismatches > 0 {
			match = fmt.Sprintf("NO (%d/%d)", mismatches, nq)
		}
		fmt.Printf("%-12s %10.2f %11.0f %10.1f %9.1f %16s\n",
			kind, float64(elapsed.Microseconds())/1000, fq/elapsed.Seconds(),
			float64(nodes)/fq, float64(evals)/fq, match)
		rep.Results = append(rep.Results, benchResult{
			Name: "IndexCompare/exactDTW/kind=" + slug(kind), Package: "mstsearch",
			Iterations: int64(nq), NsPerOp: float64(elapsed.Nanoseconds()) / fq,
			Extra: map[string]float64{
				"nodes/q": float64(nodes) / fq, "evals/q": float64(evals) / fq,
				"queries/s": fq / elapsed.Seconds(), "mismatches": float64(mismatches),
			},
		})
		if mismatches > 0 {
			fail(fmt.Errorf("index-compare: %s exact DTW kNN diverged from the linear scan on %d/%d queries", kind, mismatches, nq))
		}
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		fail(err)
		fail(os.WriteFile(jsonPath, append(buf, '\n'), 0o644))
		fmt.Printf("\nwrote %s (%d results)\n", jsonPath, len(rep.Results))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mstbench:", err)
		os.Exit(1)
	}
}
