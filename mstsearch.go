// Package mstsearch is a library for spatiotemporal trajectory similarity
// search in moving-object databases, implementing "Index-based Most
// Similar Trajectory Search" (Frentzos, Gratsias, Theodoridis — ICDE
// 2007): the DISSIM dissimilarity metric (the time integral of the
// Euclidean distance between two trajectories), its cheap trapezoid
// approximation with a certified error bound, and a best-first k-Most-
// Similar-Trajectory (k-MST) search algorithm that runs on general-purpose
// R-tree-like structures — the same indexes a MOD already maintains for
// range and nearest-neighbour queries.
//
// # Quick start
//
//	db, err := mstsearch.NewDB(mstsearch.TBTree, trajectories)
//	results, stats, err := db.KMostSimilar(&query, t1, t2, 5)
//
// The package also exposes the building blocks: exact and approximate
// DISSIM between two trajectories, the LCSS/EDR/DTW baseline measures, and
// TD-TR trajectory compression.
package mstsearch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"mstsearch/internal/baselines"
	"mstsearch/internal/dissim"
	"mstsearch/internal/geom"
	"mstsearch/internal/index"
	"mstsearch/internal/mst"
	"mstsearch/internal/selectivity"
	"mstsearch/internal/storage"
	"mstsearch/internal/tdtr"
	"mstsearch/internal/trajectory"
	"mstsearch/internal/wal"
)

// Core model types, re-exported from the internal trajectory package.
type (
	// Trajectory is a moving object's history: (x, y, t) samples with
	// strictly increasing timestamps and linear interpolation in between.
	Trajectory = trajectory.Trajectory
	// Sample is one recorded position.
	Sample = trajectory.Sample
	// ID identifies a trajectory.
	ID = trajectory.ID
)

// Result is one k-MST answer, most similar first.
type Result struct {
	TrajID ID
	// Dissim is the DISSIM value; Err is its certified error bound
	// (0 when the exact post-refinement ran).
	Dissim float64
	Err    float64
	// Certified reports whether the result is provably a member of the
	// true top-k. Complete searches certify every result; a
	// budget-degraded search (Stats.Degraded) certifies only the results
	// no unexplored trajectory can displace — the rest are provisional
	// best-effort answers.
	Certified bool
}

// SearchStats reports the work one query performed — the per-query access
// profile of the paper's §5 evaluation (node accesses, pruning power, page
// I/O) plus the bookkeeping the observability layer adds on top.
type SearchStats struct {
	NodesAccessed   int
	LeavesAccessed  int // of NodesAccessed, how many were leaves
	TotalNodes      int
	Enqueued        int     // best-first heap insertions
	PruningPower    float64 // fraction of tree nodes never touched
	PageReads       uint64  // physical page reads (buffer misses)
	BufferHits      uint64
	Retries         uint64 // page reads retried after transient faults
	Evictions       uint64 // buffer frames evicted during the query
	TrapezoidEvals  int    // Lemma 1 trapezoid interval evaluations
	ExactRefined    int    // candidates recomputed exactly (§4.4)
	TerminatedEarly bool
	// Degraded reports that a budget (MaxNodeAccesses / MaxIOReads) ran
	// out mid-search: the results are the best effort assembled within the
	// budget, with per-result Certified flags separating proven answers
	// from provisional ones.
	Degraded bool
	// CertFloor is a certified lower bound on the DISSIM of every stored
	// trajectory covering the query period that was NOT returned: +Inf
	// when the search proved nothing was left behind, finite when budget
	// degradation or pruning left trajectories only bounded from below.
	// A scatter-gather coordinator (internal/shard) compares one shard's
	// pessimistic result bounds against its siblings' floors to certify a
	// merged top-k.
	CertFloor float64
}

// Options tunes a search beyond the defaults; the zero value is sensible.
type Options struct {
	// ExactRefine recomputes exact DISSIM for result candidates whose
	// error intervals overlap (default true via DB.KMostSimilar).
	ExactRefine bool
	// DisableHeuristic1 / DisableHeuristic2 switch off the paper's pruning
	// heuristics — useful only for measurement.
	DisableHeuristic1 bool
	DisableHeuristic2 bool
	// Refine subdivides each sampling interval for a tighter trapezoid
	// bound (1 = the paper's Lemma 1).
	Refine int
	// ExcludeIDs are trajectories never reported — typically the query's
	// own stored twin in "more like this one" searches.
	ExcludeIDs []ID
	// MaxNodeAccesses bounds how many index nodes the query may read
	// (0 = unlimited). On exhaustion the query degrades instead of
	// failing: it returns the best-effort top-k found so far with
	// SearchStats.Degraded set and never exceeds the budget.
	MaxNodeAccesses int
	// MaxIOReads bounds the physical page reads (buffer misses) the query
	// may cause (0 = unlimited); exhaustion degrades like MaxNodeAccesses.
	MaxIOReads uint64
	// Parallelism tunes the concurrency of the query engine: it caps the
	// worker goroutines a KMostSimilarBatch call executes queries on, and
	// the workers a single query uses for its exact-refinement step
	// (§4.4), whose independent DISSIM integrals dominate refinement-heavy
	// queries. 0 or 1 runs a single query serially; a batch treats <= 0 as
	// GOMAXPROCS. Parallel and serial runs return bit-identical results —
	// workers only compute, admission stays sequential.
	Parallelism int
	// Trace, when non-nil, receives one typed TraceEvent per search step —
	// node visits with MBB and MINDIST, candidate admissions/completions,
	// prune decisions with the responsible heuristic and the threshold it
	// compared against, refinement progress, budget exhaustion — delivered
	// synchronously from the searching goroutine. It is the building block
	// for slow-query forensics and DB.Explain. A nil hook costs one
	// predictable branch per step and allocates nothing; tracing never
	// changes what the search computes. Hooks must be fast, and when one
	// Options value is shared by a KMostSimilarBatch call the hook must be
	// safe for concurrent use.
	Trace func(TraceEvent)
}

// Trace event model, re-exported from the search engine. See the EventKind
// constants for the taxonomy.
type (
	// TraceEvent is one step of a search, delivered to Options.Trace.
	TraceEvent = mst.TraceEvent
	// EventKind discriminates trace events.
	EventKind = mst.EventKind
)

// The trace event taxonomy (see the mst package for per-kind field
// documentation).
const (
	EventNodeEnqueue       = mst.EventNodeEnqueue
	EventNodeVisit         = mst.EventNodeVisit
	EventCandidateAdmit    = mst.EventCandidateAdmit
	EventCandidateComplete = mst.EventCandidateComplete
	EventCandidatePrune    = mst.EventCandidatePrune
	EventEarlyTerminate    = mst.EventEarlyTerminate
	EventBudgetExhausted   = mst.EventBudgetExhausted
	EventRefineStart       = mst.EventRefineStart
	EventRefined           = mst.EventRefined
	EventRefineDone        = mst.EventRefineDone
	EventShardScatter      = mst.EventShardScatter
	EventShardPrune        = mst.EventShardPrune
	EventReplicaFailover   = mst.EventReplicaFailover
	EventReplicaRepair     = mst.EventReplicaRepair
)

// Metric selects the distance function of a k-nearest query (the
// Request.Metric field). The zero value is the paper's DISSIM, so
// existing Request literals keep their meaning; the other metrics are the
// baseline distances of the experimental study, served exactly by the
// metric (N-tree) index kind and rejected as ErrBadQuery by the MBB
// kinds, whose geometry cannot bound them.
type Metric = mst.Metric

// The metric taxonomy. MetricLCSS and MetricEDR require a positive
// Request.MetricEps matching tolerance.
const (
	MetricDISSIM = mst.MetricDISSIM
	MetricDTW    = mst.MetricDTW
	MetricLCSS   = mst.MetricLCSS
	MetricEDR    = mst.MetricEDR
)

// ErrUnknownMetric reports a metric name ParseMetric does not recognize.
var ErrUnknownMetric = mst.ErrUnknownMetric

// ParseMetric resolves a metric name (case-insensitively) to its Metric —
// the inverse of Metric.String. The empty string is MetricDISSIM,
// mirroring the Request field's zero value.
func ParseMetric(s string) (Metric, error) { return mst.ParseMetric(s) }

// MetricDistance evaluates metric m between two trajectories over
// [t1, t2] — the reference every index-backed metric query is
// bit-identical to. ok is false when either trajectory does not cover the
// period. eps is the per-axis matching tolerance of MetricLCSS/MetricEDR
// (ignored by the others).
func MetricDistance(m Metric, eps float64, q, tr *Trajectory, t1, t2 float64) (float64, bool) {
	return mst.EvalMetric(m, eps, q, tr, t1, t2)
}

// DB is a trajectory database: an in-memory trajectory store plus a paged
// spatiotemporal index (4 KB pages) queried through an LRU buffer pool
// sized by the paper's policy (10 % of the index, ≤1000 pages).
//
// A DB is safe for concurrent use: queries may run in parallel with each
// other and are serialized against mutations (Add, AppendSample, Recover)
// by an internal reader/writer lock.
type DB struct {
	// slow is the bounded in-memory slow-query log. It synchronizes
	// itself (atomic threshold, internal mutex), so it sits above the
	// DB's locks rather than under either of them.
	slow slowLog

	mu    sync.RWMutex // lockrank: 10 — queries take read side; mutations take write side
	kind  IndexKind
	file  *storage.File
	eng   indexEngine
	trajs []Trajectory
	byID  map[ID]int
	vmax  float64

	warm *storage.SharedPool // optional warm buffer shared across queries

	// Durable mode (OpenDurable): the write-ahead log mutations journal
	// into, the directory holding it and the checkpoint snapshots, and
	// the options the DB was opened with. All nil/zero for an in-memory
	// DB — the mutation path then never touches the wal package.
	wal   *wal.Log
	dir   string
	epoch uint32
	dopt  DurableOptions

	// pagerWrap, when set, wraps the pager underneath each per-query
	// buffer pool — the fault-injection / instrumentation seam.
	pagerWrap func(Pager) Pager

	dsMu sync.Mutex             // lockrank: 20 — taken under db.mu, never the reverse
	ds   *trajectory.Dataset    // cached view over trajs; nil after Add
	hist *selectivity.Histogram // cached selectivity histogram; nil after Add
}

// Pager is the page-access abstraction of the storage layer, re-exported
// so callers can interpose middleware (fault injection, metrics) via
// SetPagerWrapper.
type Pager = storage.Pager

// PageID addresses one page of the index file, re-exported so trace events
// and pager middleware can name pages.
type PageID = storage.PageID

// Geometry re-exports used by trace events and the typed query API.
type (
	// STPoint is a spatiotemporal point (x, y, t).
	STPoint = geom.STPoint
	// MBB is a 3D minimum bounding box over (x, y, t).
	MBB = geom.MBB
)

// Typed errors of the query path, re-exported from the internal layers so
// callers can build a complete failure taxonomy with errors.Is/As:
//
//   - ErrCanceled — the query's context was canceled or expired (the
//     error also wraps context.Canceled / context.DeadlineExceeded);
//   - ErrDeadlineExceeded — the deadline-expiry refinement of
//     ErrCanceled: a query abandoned because its context's deadline
//     passed, as opposed to an explicit cancel. Every error wrapping it
//     also wraps ErrCanceled (existing errors.Is call sites keep
//     working) and context.DeadlineExceeded;
//   - ErrPageCorrupt — an index page failed checksum verification (torn
//     write or bit rot); errors.As recovers the damaged page id, and
//     DB.Recover rebuilds the index from the trajectory store;
//   - ErrInjected — a deliberately injected fault reached the caller
//     (fault-injection testing only);
//   - ErrBadQuery — the query trajectory does not cover the requested
//     period, or the period itself is empty (t1 >= t2).
var (
	ErrCanceled         = mst.ErrCanceled
	ErrDeadlineExceeded = mst.ErrDeadlineExceeded
	ErrInjected         = storage.ErrInjected
	ErrBadQuery         = mst.ErrBadQuery
)

// ErrPageCorrupt is the typed page-corruption error; its Page field is the
// damaged page's id.
type ErrPageCorrupt = storage.ErrPageCorrupt

// SetPagerWrapper installs a wrapper applied to the pager underneath every
// subsequently built buffer pool (nil removes it): each per-query pool
// gets its own wrapper instance, and an enabled warm shared buffer is
// rebuilt immediately over a single wrapped pager — which therefore must
// be safe for concurrent use (FaultyPager is). It is the seam for fault
// injection and I/O instrumentation.
func (db *DB) SetPagerWrapper(wrap func(Pager) Pager) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.pagerWrap = wrap
	if db.warm != nil {
		db.warm = db.newWarmPool()
	}
}

// statsPager is the query-side pager view: page access plus counters.
type statsPager interface {
	storage.Pager
	Stats() storage.Stats
}

// Open creates an empty database backed by the chosen index structure.
// Unregistered kinds fall back to the 3D R-tree, the historical default.
func Open(kind IndexKind) *DB {
	if !kind.Valid() {
		kind = RTree3D
	}
	db := &DB{kind: kind, file: storage.NewFile(storage.DefaultPageSize), byID: map[ID]int{}}
	db.eng = db.newEngine(kind, db.file)
	return db
}

// NewDB creates a database and bulk-adds the trajectories.
func NewDB(kind IndexKind, trajs []Trajectory) (*DB, error) {
	db := Open(kind)
	for i := range trajs {
		if err := db.Add(trajs[i]); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// ErrDuplicateID reports an Add with an already-stored trajectory ID.
var ErrDuplicateID = errors.New("mstsearch: duplicate trajectory id")

// Add validates and indexes one trajectory. On a durable DB the
// trajectory is journaled to the write-ahead log — and, under the
// default SyncAlways policy, fsynced — before it is applied, so a nil
// return means the mutation survives a crash.
func (db *DB) Add(tr Trajectory) error {
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("mstsearch: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.byID[tr.ID]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateID, tr.ID)
	}
	if db.wal != nil {
		if err := db.wal.Append(recAdd, encodeAddRecord(&tr)); err != nil {
			return fmt.Errorf("mstsearch: journal add: %w", err)
		}
	}
	if err := db.applyAddLocked(tr); err != nil {
		return err
	}
	return db.maybeCheckpointLocked()
}

// applyAddLocked indexes a pre-validated, non-duplicate trajectory —
// the journal-free half of Add, shared with WAL replay. The trajectory
// enters the store before the engine indexes it (a metric engine resolves
// member geometry through the store during insertion) and is rolled back
// if indexing fails. Callers must hold db.mu (write side).
func (db *DB) applyAddLocked(tr Trajectory) error {
	db.byID[tr.ID] = len(db.trajs)
	db.trajs = append(db.trajs, tr)
	if err := db.eng.insertTrajectory(&db.trajs[len(db.trajs)-1]); err != nil {
		delete(db.byID, tr.ID)
		db.trajs = db.trajs[:len(db.trajs)-1]
		return err
	}
	db.vmax = math.Max(db.vmax, tr.MaxSpeed())
	db.invalidate()
	return nil
}

// invalidate drops caches made stale by a mutation: the dataset view, the
// selectivity histogram, and the warm buffer pool (whose frames no longer
// reflect the rewritten index pages). Callers must hold db.mu (write
// side); invalidate touches db.warm and db.file under that lock.
func (db *DB) invalidate() {
	db.dsMu.Lock()
	db.ds = nil
	db.hist = nil
	db.dsMu.Unlock()
	if db.warm != nil {
		db.warm = db.newWarmPool()
	}
}

// newWarmPool builds the shared striped pool over the (possibly
// fault-wrapped) page file, with the paper's capacity policy. Callers
// must hold db.mu (write side).
func (db *DB) newWarmPool() *storage.SharedPool {
	return storage.NewSharedPaperPool(db.wrappedFile())
}

// AppendSample extends a stored trajectory with one newer position — the
// online maintenance path of a live MOD, where location updates stream in.
// The new segment is indexed immediately and is visible to subsequent
// queries. The sample's timestamp must be strictly after the trajectory's
// current end.
// On a durable DB the sample is journaled (and, under SyncAlways,
// fsynced) before it is applied, so a nil return means the mutation
// survives a crash.
func (db *DB) AppendSample(id ID, s Sample) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	i, ok := db.byID[id]
	if !ok {
		return fmt.Errorf("mstsearch: unknown trajectory %d", id)
	}
	last := db.trajs[i].Samples[len(db.trajs[i].Samples)-1]
	if s.T <= last.T {
		return fmt.Errorf("mstsearch: sample at t=%g not after trajectory end t=%g", s.T, last.T)
	}
	if db.wal != nil {
		if err := db.wal.Append(recAppend, encodeAppendRecord(id, s)); err != nil {
			return fmt.Errorf("mstsearch: journal append: %w", err)
		}
	}
	if err := db.applyAppendLocked(i, s); err != nil {
		return err
	}
	return db.maybeCheckpointLocked()
}

// applyAppendLocked indexes one pre-validated sample onto the trajectory
// at store index i — the journal-free half of AppendSample, shared with
// WAL replay. The sample enters the store first so an engine that cannot
// append incrementally (errRebuildRequired) can rebuild from the updated
// store; any failure rolls the sample back. Callers must hold db.mu
// (write side).
func (db *DB) applyAppendLocked(i int, s Sample) error {
	tr := &db.trajs[i]
	last := tr.Samples[len(tr.Samples)-1]
	e := index.LeafEntry{
		TrajID: tr.ID,
		SeqNo:  uint32(tr.NumSegments()),
		Seg: geom.Segment{
			A: geom.STPoint{X: last.X, Y: last.Y, T: last.T},
			B: geom.STPoint{X: s.X, Y: s.Y, T: s.T},
		},
	}
	tr.Samples = append(tr.Samples, s)
	err := db.eng.appendSegment(e, tr)
	if errors.Is(err, errRebuildRequired) {
		err = db.recoverLocked()
	}
	if err != nil {
		tr.Samples = tr.Samples[:len(tr.Samples)-1]
		return err
	}
	db.vmax = math.Max(db.vmax, e.Seg.Speed())
	db.invalidate()
	return nil
}

// Recover rebuilds the paged index from scratch out of the in-memory
// trajectory store — the repair path after a query surfaces
// ErrPageCorrupt. The damaged page file is discarded and replaced by a
// freshly built one; the trajectory store is the source of truth, so no
// data is lost. Recover also makes a snapshot-loaded TB-tree or STR-tree
// writable again (Load opens them read-only).
//
// Recover takes the write lock: in-flight queries finish against the old
// file first, and queries started after Recover returns see the rebuilt
// index.
func (db *DB) Recover() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.recoverLocked()
}

// recoverLocked rebuilds the paged index from the trajectory store — the
// body of Recover, shared with the durable open path (which must make a
// snapshot-loaded TB-tree or STR-tree writable before replaying the
// log). Callers must hold db.mu (write side).
func (db *DB) recoverLocked() error {
	file := storage.NewFile(db.file.PageSize())
	eng := db.newEngine(db.kind, file)
	for i := range db.trajs {
		if err := eng.insertTrajectory(&db.trajs[i]); err != nil {
			return fmt.Errorf("mstsearch: recover: %w", err)
		}
	}
	db.file = file
	db.eng = eng
	db.invalidate()
	return nil
}

// dataset returns the cached dataset view, rebuilding after inserts.
// Callers must hold db.mu (either side); queries may share the cache
// concurrently thanks to dsMu.
func (db *DB) dataset() (*trajectory.Dataset, error) {
	db.dsMu.Lock()
	defer db.dsMu.Unlock()
	if db.ds == nil {
		ds, err := trajectory.NewDataset(db.trajs)
		if err != nil {
			return nil, err
		}
		db.ds = ds
	}
	return db.ds, nil
}

// Get returns a snapshot of a stored trajectory, or nil. The returned
// copy is private to the caller, so it stays valid under concurrent
// AppendSample/Add.
func (db *DB) Get(id ID) *Trajectory {
	db.mu.RLock()
	defer db.mu.RUnlock()
	tr := db.get(id)
	if tr == nil {
		return nil
	}
	cl := tr.Clone()
	return &cl
}

// get returns the stored trajectory without locking or copying; callers
// must hold db.mu and not retain the pointer past the lock.
func (db *DB) get(id ID) *Trajectory {
	i, ok := db.byID[id]
	if !ok {
		return nil
	}
	return &db.trajs[i]
}

// Len returns the number of stored trajectories.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.trajs)
}

// Kind reports the index structure backing the database.
func (db *DB) Kind() IndexKind {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.kind
}

// IDs returns the stored trajectory IDs in ascending order — the
// enumeration a cluster coordinator (internal/shard) uses to rebuild its
// routing table from recovered shards.
func (db *DB) IDs() []ID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]ID, len(db.trajs))
	for i := range db.trajs {
		out[i] = db.trajs[i].ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumSegments returns the total indexed segment count.
func (db *DB) NumSegments() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.numSegments()
}

// numSegments counts indexed segments; callers must hold db.mu (either
// side).
func (db *DB) numSegments() int {
	n := 0
	for i := range db.trajs {
		n += db.trajs[i].NumSegments()
	}
	return n
}

// IndexSizeMB returns the index size in megabytes.
func (db *DB) IndexSizeMB() float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return float64(db.file.SizeBytes()) / (1024 * 1024)
}

// EnableWarmBuffer switches the database from per-query buffer pools to a
// single latch-protected pool shared by all queries (the paper's policy:
// 10 % of the index, ≤1000 pages). A warm shared cache matches how a
// database actually serves a workload — repeat queries stop paying
// physical reads — and is safe under concurrent queries. Call it after
// loading the data; mutations (Add/AppendSample) automatically replace
// the pool so cached frames never go stale.
func (db *DB) EnableWarmBuffer() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.warm = db.newWarmPool()
}

// view builds a buffered read view of the index: the shared warm pool when
// enabled, otherwise a fresh per-query pool (wrapped by the fault-
// injection seam when installed). Callers must hold db.mu and type-switch
// the view to the capability they need (index.Tree for segment-level
// queries, index.MetricTree for metric kNN).
func (db *DB) view() (index.Index, statsPager) {
	bp := db.queryPager()
	return db.indexOn(bp), bp
}

// queryPager picks the pager a query reads through: the shared warm pool
// when enabled, otherwise a fresh per-query buffer pool over the (possibly
// fault-wrapped) page file. Callers must hold db.mu.
func (db *DB) queryPager() statsPager {
	if db.warm != nil {
		return db.warm
	}
	return storage.NewPaperBuffer(db.wrappedFile())
}

// wrappedFile returns the page file behind the fault-injection /
// instrumentation seam when one is installed. Callers must hold db.mu.
func (db *DB) wrappedFile() storage.Pager {
	base := storage.Pager(db.file)
	if db.pagerWrap != nil {
		base = db.pagerWrap(base)
	}
	return base
}

// indexOn opens a read view of the index structure over the given pager.
// Callers must hold db.mu.
func (db *DB) indexOn(bp storage.Pager) index.Index {
	return db.eng.view(bp)
}

// KMostSimilar runs a k-MST query: the k stored trajectories with the
// smallest DISSIM from q over the period [t1, t2] (both q and the answers
// must be defined throughout the period). Results come back most similar
// first with exact dissimilarities.
//
// Deprecated: use [DB.Query] with [DefaultOptions], the canonical
// context-first entry point. This wrapper remains for compatibility and
// will not be removed, but new call sites should not be written against
// it.
func (db *DB) KMostSimilar(q *Trajectory, t1, t2 float64, k int) ([]Result, SearchStats, error) {
	r, err := db.Query(context.Background(), Request{Q: q, Interval: Interval{t1, t2}, K: k, Options: DefaultOptions()})
	return r.Results, r.Stats, err
}

// KMostSimilarContext is KMostSimilar under a context: a canceled or
// expired context aborts the search between node visits with an error
// wrapping ErrCanceled.
//
// Deprecated: use [DB.Query] with [DefaultOptions].
func (db *DB) KMostSimilarContext(ctx context.Context, q *Trajectory, t1, t2 float64, k int) ([]Result, SearchStats, error) {
	r, err := db.Query(ctx, Request{Q: q, Interval: Interval{t1, t2}, K: k, Options: DefaultOptions()})
	return r.Results, r.Stats, err
}

// KMostSimilarOpts is KMostSimilar with explicit Options.
//
// Deprecated: use [DB.Query].
func (db *DB) KMostSimilarOpts(q *Trajectory, t1, t2 float64, k int, o Options) ([]Result, SearchStats, error) {
	r, err := db.Query(context.Background(), Request{Q: q, Interval: Interval{t1, t2}, K: k, Options: o})
	return r.Results, r.Stats, err
}

// KMostSimilarOptsContext is the fully explicit legacy k-MST entry point:
// context-aware and Options-tuned.
//
// Deprecated: use [DB.Query], which carries the same capabilities on a
// single Request/Response pair.
func (db *DB) KMostSimilarOptsContext(ctx context.Context, q *Trajectory, t1, t2 float64, k int, o Options) ([]Result, SearchStats, error) {
	r, err := db.Query(ctx, Request{Q: q, Interval: Interval{t1, t2}, K: k, Options: o})
	return r.Results, r.Stats, err
}

// kMostSimilarOn runs one k-MST / metric-kNN query through the given
// pager — the common core of the single-query entry points (fresh or warm
// pool) and the batch executor (pool shared across workers). Callers must
// hold db.mu (read side). With a shared pool, the I/O fields of
// SearchStats are counter deltas attributed best-effort: concurrent
// queries interleave on the same counters, so per-query
// PageReads/BufferHits are approximate while the pool-level totals stay
// exact.
func (db *DB) kMostSimilarOn(ctx context.Context, bp statsPager, q *Trajectory, t1, t2 float64, k int, m Metric, eps float64, o Options) ([]Result, SearchStats, error) {
	if q == nil {
		return nil, SearchStats{}, fmt.Errorf("%w: nil query trajectory", ErrBadQuery)
	}
	view := db.indexOn(bp)
	before := bp.Stats() // per-query I/O = counter delta (fresh pools start at zero)
	opts := mst.Options{
		K:                 k,
		Vmax:              db.vmax + q.MaxSpeed(),
		Refine:            o.Refine,
		DisableHeuristic1: o.DisableHeuristic1,
		DisableHeuristic2: o.DisableHeuristic2,
		ExcludeIDs:        o.ExcludeIDs,
		MaxNodeAccesses:   o.MaxNodeAccesses,
		MaxIOReads:        o.MaxIOReads,
		Parallelism:       o.Parallelism,
		Trace:             o.Trace,
	}
	if o.MaxIOReads > 0 {
		opts.IOReads = func() uint64 { return bp.Stats().Misses - before.Misses }
	}
	var (
		res []mst.Result
		st  mst.Stats
		err error
	)
	switch tree := view.(type) {
	case index.MetricTree:
		// A metric tree stores no geometry: candidates and pivots resolve
		// through the dataset, and every result is evaluated exactly, so
		// the search needs Data regardless of o.ExactRefine.
		ds, derr := db.dataset()
		if derr != nil {
			return nil, SearchStats{}, derr
		}
		opts.Data = ds
		res, st, err = mst.MetricSearchContext(ctx, tree, q, t1, t2, m, eps, opts)
	case index.Tree:
		if m != MetricDISSIM {
			return nil, SearchStats{}, fmt.Errorf("%w: metric %s is not supported by the %s index (use an %s database)",
				ErrBadQuery, m, db.kind, NTree)
		}
		if o.ExactRefine {
			ds, derr := db.dataset()
			if derr != nil {
				return nil, SearchStats{}, derr
			}
			opts.Data = ds
		}
		res, st, err = mst.SearchContext(ctx, tree, q, t1, t2, opts)
	default:
		return nil, SearchStats{}, fmt.Errorf("mstsearch: index kind %s exposes no searchable view", db.kind)
	}
	if err != nil {
		return nil, SearchStats{}, err
	}
	out := make([]Result, len(res))
	for i, r := range res {
		out[i] = Result{TrajID: r.TrajID, Dissim: r.Dissim, Err: r.Err, Certified: r.Certified}
	}
	bs := bp.Stats()
	return out, SearchStats{
		NodesAccessed:   st.NodesAccessed,
		LeavesAccessed:  st.LeavesAccessed,
		TotalNodes:      st.TotalNodes,
		Enqueued:        st.Enqueued,
		PruningPower:    st.PruningPower,
		PageReads:       bs.Misses - before.Misses, // each miss is one physical read
		BufferHits:      bs.Hits - before.Hits,
		Retries:         bs.Retries - before.Retries,
		Evictions:       bs.Evictions - before.Evictions,
		TrapezoidEvals:  st.TrapezoidEvals,
		ExactRefined:    st.ExactRefined,
		TerminatedEarly: st.TerminatedEarly,
		Degraded:        st.Degraded,
		CertFloor:       st.CertFloor,
	}, nil
}

// KMostSimilarTo finds the k stored trajectories most similar to the
// stored trajectory id over [t1, t2], excluding the trajectory itself.
func (db *DB) KMostSimilarTo(id ID, t1, t2 float64, k int) ([]Result, SearchStats, error) {
	tr := db.Get(id)
	if tr == nil {
		return nil, SearchStats{}, fmt.Errorf("mstsearch: unknown trajectory %d", id)
	}
	q := tr.Clone()
	o := DefaultOptions()
	o.ExcludeIDs = []ID{id}
	r, err := db.Query(context.Background(), Request{Q: &q, Interval: Interval{t1, t2}, K: k, Options: o})
	return r.Results, r.Stats, err
}

// KMostSimilarAuto answers a k-MST query through whichever execution plan
// the selectivity cost model predicts is cheaper (see [DB.QueryAuto]).
// The bool reports whether the index was used.
//
// Deprecated: use [DB.QueryAuto], which evaluates the plan choice and the
// query under one consistent snapshot of the store.
func (db *DB) KMostSimilarAuto(q *Trajectory, t1, t2 float64, k int) ([]Result, SearchStats, bool, error) {
	r, usedIndex, err := db.QueryAuto(context.Background(), Request{
		Q: q, Interval: Interval{t1, t2}, K: k, Options: DefaultOptions(),
	})
	return r.Results, r.Stats, usedIndex, err
}

// Dissimilarity returns the exact DISSIM between two trajectories over
// [t1, t2]; ok is false when either does not cover the period.
func Dissimilarity(q, t *Trajectory, t1, t2 float64) (float64, bool) {
	return dissim.Exact(q, t, t1, t2)
}

// DissimilarityApprox returns the trapezoid-rule DISSIM (Lemma 1) and its
// certified error bound: the exact value lies within ±errBound.
func DissimilarityApprox(q, t *Trajectory, t1, t2 float64) (value, errBound float64, ok bool) {
	v, ok := dissim.Approx(q, t, t1, t2, 1)
	return v.Approx, v.Err, ok
}

// LCSSSimilarity is the Longest Common SubSequence similarity in [0, 1]
// (1 = identical); eps is the per-axis matching threshold, delta the index
// band (< 0 disables).
func LCSSSimilarity(a, b *Trajectory, eps float64, delta int) float64 {
	return baselines.LCSS(a, b, eps, delta)
}

// EDRDistance is the Edit Distance on Real sequence (smaller = more
// similar).
func EDRDistance(a, b *Trajectory, eps float64) int { return baselines.EDR(a, b, eps) }

// DTWDistance is the Dynamic Time Warping distance (smaller = more
// similar).
func DTWDistance(a, b *Trajectory) float64 { return baselines.DTW(a, b) }

// CompressTDTR compresses a trajectory with the TD-TR algorithm; p is the
// tolerance as a fraction of the trajectory's length (e.g. 0.01 = 1 %).
func CompressTDTR(tr *Trajectory, p float64) Trajectory {
	return tdtr.CompressRatio(tr, p)
}

// SegmentHit is one range-query answer: a stored trajectory's motion
// segment intersecting the query window.
type SegmentHit struct {
	TrajID ID
	SeqNo  uint32
	// X1, Y1, T1 — X2, Y2, T2 are the segment's endpoints, kept flat for
	// compatibility; Start/End expose the same data as typed points.
	X1, Y1, T1 float64
	X2, Y2, T2 float64
}

// Start returns the segment's earlier endpoint as a typed point.
func (h SegmentHit) Start() STPoint { return STPoint{X: h.X1, Y: h.Y1, T: h.T1} }

// End returns the segment's later endpoint as a typed point.
func (h SegmentHit) End() STPoint { return STPoint{X: h.X2, Y: h.Y2, T: h.T2} }

// RangeQuery returns every stored segment intersecting the spatial window
// [minX, maxX] × [minY, maxY] during [t1, t2].
//
// Deprecated: use [DB.Range], which takes typed Window/Interval values
// instead of six positional floats.
func (db *DB) RangeQuery(minX, minY, maxX, maxY, t1, t2 float64) ([]SegmentHit, error) {
	return db.Range(context.Background(), Window{minX, minY, maxX, maxY}, Interval{t1, t2})
}

// RangeQueryContext is RangeQuery under a context.
//
// Deprecated: use [DB.Range].
func (db *DB) RangeQueryContext(ctx context.Context, minX, minY, maxX, maxY, t1, t2 float64) ([]SegmentHit, error) {
	return db.Range(ctx, Window{minX, minY, maxX, maxY}, Interval{t1, t2})
}

// Neighbor is one historical point-NN answer.
type Neighbor struct {
	TrajID ID
	Dist   float64
}

// NearestAt returns the k moving objects closest to point (x, y) at time
// instant t.
//
// Deprecated: use [DB.Nearest], the context-first equivalent.
func (db *DB) NearestAt(x, y, t float64, k int) ([]Neighbor, error) {
	return db.Nearest(context.Background(), x, y, t, k)
}

// NearestAtContext is NearestAt under a context.
//
// Deprecated: use [DB.Nearest].
func (db *DB) NearestAtContext(ctx context.Context, x, y, t float64, k int) ([]Neighbor, error) {
	return db.Nearest(ctx, x, y, t, k)
}

// TopologyResult describes how one stored trajectory relates to a queried
// region during a time window.
type TopologyResult struct {
	TrajID ID
	// Relation is the topological predicate name: "inside", "enter",
	// "leave", "cross", "detour" or "weave" (objects never entering the
	// region are not reported).
	Relation string
	// InsideDuration is the total time spent inside the region.
	InsideDuration float64
}

// TopologyQuery classifies every stored trajectory that touches the
// spatial region [minX, maxX] × [minY, maxY] during [t1, t2] by its
// topological relation (enter/leave/cross/…).
//
// Deprecated: use [DB.Topology], which takes typed Window/Interval values
// instead of six positional floats.
func (db *DB) TopologyQuery(minX, minY, maxX, maxY, t1, t2 float64) ([]TopologyResult, error) {
	return db.Topology(context.Background(), Window{minX, minY, maxX, maxY}, Interval{t1, t2})
}

// TopologyQueryContext is TopologyQuery under a context.
//
// Deprecated: use [DB.Topology].
func (db *DB) TopologyQueryContext(ctx context.Context, minX, minY, maxX, maxY, t1, t2 float64) ([]TopologyResult, error) {
	return db.Topology(ctx, Window{minX, minY, maxX, maxY}, Interval{t1, t2})
}

// RelaxedResult is one time-relaxed k-MST answer: the best DISSIM over all
// feasible time shifts of the query, and the shift achieving it.
type RelaxedResult struct {
	TrajID ID
	Dissim float64
	Offset float64
}

// KMostSimilarRelaxed answers the Time-Relaxed MST query (the paper's §6
// research direction): the k trajectories minimizing DISSIM over every
// feasible time shift of the query.
//
// Deprecated: use [DB.Relaxed], the context-first equivalent.
func (db *DB) KMostSimilarRelaxed(q *Trajectory, k int) ([]RelaxedResult, error) {
	return db.Relaxed(context.Background(), q, k)
}

// KMostSimilarRelaxedContext is KMostSimilarRelaxed under a context.
//
// Deprecated: use [DB.Relaxed].
func (db *DB) KMostSimilarRelaxedContext(ctx context.Context, q *Trajectory, k int) ([]RelaxedResult, error) {
	return db.Relaxed(ctx, q, k)
}

// QueryCostEstimate prices a k-MST query before running it (see package
// selectivity; the paper's §6 query-optimization direction).
type QueryCostEstimate struct {
	// CorridorRadius is the predicted spatial radius within which the k
	// answers travel.
	CorridorRadius float64
	// ExpectedSegments is the predicted leaf-entry workload.
	ExpectedSegments float64
	// ExpectedLeafPages approximates the leaf I/O of the search.
	ExpectedLeafPages float64
	// RangeSelectivity of the query's bounding window, for comparison
	// with a plain range scan.
	RangeSelectivity float64
}

// EstimateQueryCost predicts the work a KMostSimilar call would perform,
// using a 3D histogram over the stored segments (built lazily, cached
// until the next Add).
func (db *DB) EstimateQueryCost(q *Trajectory, t1, t2 float64, k int) (QueryCostEstimate, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.estimateQueryCostLocked(q, t1, t2, k)
}

// estimateQueryCostLocked is EstimateQueryCost under an already-held lock,
// so QueryAuto and Explain can price and execute a query against one
// consistent snapshot of the store. Callers must hold db.mu (either side).
func (db *DB) estimateQueryCostLocked(q *Trajectory, t1, t2 float64, k int) (QueryCostEstimate, error) {
	h, err := db.histogram()
	if err != nil {
		return QueryCostEstimate{}, err
	}
	est := h.EstimateKMST(q, t1, t2, k, index.MaxLeafEntries(db.file.PageSize()))
	box := q.Bounds()
	box.MinX -= est.Radius
	box.MinY -= est.Radius
	box.MaxX += est.Radius
	box.MaxY += est.Radius
	box.MinT, box.MaxT = t1, t2
	return QueryCostEstimate{
		CorridorRadius:    est.Radius,
		ExpectedSegments:  est.Segments,
		ExpectedLeafPages: est.LeafPages,
		RangeSelectivity:  h.Selectivity(box),
	}, nil
}

// EstimateRangeCount predicts how many segments a RangeQuery would return.
//
// Deprecated: use [DB.EstimateRange], which takes typed Window/Interval
// values instead of six positional floats.
func (db *DB) EstimateRangeCount(minX, minY, maxX, maxY, t1, t2 float64) (float64, error) {
	return db.EstimateRange(Window{minX, minY, maxX, maxY}, Interval{t1, t2})
}

// histogram lazily builds the selectivity histogram (resolution grows with
// the cube root of the segment count, capped for memory). Callers must
// hold db.mu (either side); queries share the cache via dsMu.
func (db *DB) histogram() (*selectivity.Histogram, error) {
	db.dsMu.Lock()
	defer db.dsMu.Unlock()
	if db.hist != nil {
		return db.hist, nil
	}
	if db.ds == nil {
		ds, err := trajectory.NewDataset(db.trajs)
		if err != nil {
			return nil, err
		}
		db.ds = ds
	}
	res := int(math.Cbrt(float64(db.numSegments()))) / 2
	if res < 4 {
		res = 4
	}
	if res > 32 {
		res = 32
	}
	h, err := selectivity.Build(db.ds, res, res, res)
	if err != nil {
		return nil, err
	}
	db.hist = h
	return h, nil
}

// Geographic import helpers, re-exported from the trajectory model: build
// metric trajectories from GPS fixes via a local projection.
type (
	// GeoSample is one GPS fix (degrees, seconds).
	GeoSample = trajectory.GeoSample
	// GeoProjection is a local equirectangular projection shared by a
	// dataset.
	GeoProjection = trajectory.GeoProjection
)

// NewGeoProjection creates a projection centred at (lat0, lon0) degrees.
func NewGeoProjection(lat0, lon0 float64) (*GeoProjection, error) {
	return trajectory.NewGeoProjection(lat0, lon0)
}

// FromLatLon converts GPS fixes to a metric trajectory under the
// projection (x east, y north, metres; time in seconds).
func FromLatLon(p *GeoProjection, id ID, samples []GeoSample) (Trajectory, error) {
	return trajectory.FromLatLon(p, id, samples)
}

// ReadTrajectoriesCSV parses trajectories from "id,x,y,t" rows (samples
// grouped by id in temporal order).
func ReadTrajectoriesCSV(r io.Reader) ([]Trajectory, error) { return trajectory.ReadCSV(r) }

// WriteTrajectoriesCSV writes trajectories as "id,x,y,t" rows.
func WriteTrajectoriesCSV(w io.Writer, trajs []Trajectory) error {
	return trajectory.WriteCSV(w, trajs)
}
