// Benchmarks regenerating the paper's tables and figures, one testing.B
// target per artifact (see DESIGN.md §2 for the experiment index). They
// run scaled-down workloads with the published shape; `mstbench -paper`
// runs the full-scale versions.
package mstsearch

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mstsearch/internal/experiments"
	"mstsearch/internal/index"
	"mstsearch/internal/mst"
	"mstsearch/internal/rtree"
	"mstsearch/internal/storage"
)

// benchSamples keeps per-object sampling small enough for -bench runs
// while preserving the workload shape (the paper uses 2001).
const benchSamples = 301

// BenchmarkTable2IndexBuild regenerates Table 2's build step: indexing one
// synthetic dataset into each structure and reporting the index size.
func BenchmarkTable2IndexBuild(b *testing.B) {
	for _, kind := range experiments.TreeKinds {
		b.Run(kind.String(), func(b *testing.B) {
			data := experiments.SyntheticDataset(50, benchSamples, 1)
			b.ResetTimer()
			var mb float64
			for i := 0; i < b.N; i++ {
				built, err := experiments.BuildIndex(kind, data)
				if err != nil {
					b.Fatal(err)
				}
				mb = built.SizeMB()
			}
			b.ReportMetric(mb, "MB")
			b.ReportMetric(float64(data.NumSegments())/1000, "kEntries")
		})
	}
}

// BenchmarkFig8Compression regenerates Fig. 8: TD-TR compression of the
// fleet's busiest trajectory across the p sweep.
func BenchmarkFig8Compression(b *testing.B) {
	cfg := experiments.QualityConfig{Scale: 0.2, Seed: 1}
	b.ResetTimer()
	var rows []experiments.CompressionRow
	for i := 0; i < b.N; i++ {
		rows = experiments.RunCompression(cfg)
	}
	b.StopTimer()
	if len(rows) > 0 {
		b.ReportMetric(float64(rows[0].Vertices), "vertices_p0")
		b.ReportMetric(float64(rows[len(rows)-1].Vertices), "vertices_pMax")
	}
}

// BenchmarkFig9Quality regenerates one p-column of Fig. 9 (the quality
// comparison DISSIM vs LCSS/LCSS-I/EDR/EDR-I) on a scaled fleet.
func BenchmarkFig9Quality(b *testing.B) {
	cfg := experiments.QualityConfig{
		Scale:      0.08,
		NumQueries: 6,
		PValues:    []float64{0.01},
		Seed:       1,
	}
	b.ResetTimer()
	var rows []experiments.QualityRow
	for i := 0; i < b.N; i++ {
		rows = experiments.RunQuality(cfg)
	}
	b.StopTimer()
	if len(rows) > 0 {
		b.ReportMetric(rows[0].FalsePercent["DISSIM"], "falsePct_DISSIM")
		b.ReportMetric(rows[0].FalsePercent["EDR"], "falsePct_EDR")
	}
}

// runPerfBench executes one Fig. 10 x-position for both trees as
// sub-benchmarks.
func runPerfBench(b *testing.B, name string, card int, qlen float64, k int) {
	b.Helper()
	r := experiments.NewRunner(experiments.PerfConfig{
		SamplesPerObject: benchSamples,
		NumQueries:       10,
		Seed:             1,
	})
	qs := experiments.QuerySettings{
		Name:          name,
		Cardinalities: []int{card},
		QueryLengths:  []float64{qlen},
		Ks:            []int{k},
	}
	// Build outside the timed region.
	rows, err := r.Run(qs)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range experiments.TreeKinds {
		b.Run(fmt.Sprintf("%s/objs=%d/len=%.0f%%/k=%d", kind, card, qlen*100, k), func(b *testing.B) {
			var last experiments.PerfRow
			for i := 0; i < b.N; i++ {
				got, err := r.Run(qs)
				if err != nil {
					b.Fatal(err)
				}
				for _, row := range got {
					if row.Tree == kind {
						last = row
					}
				}
			}
			b.ReportMetric(last.AvgTimeMS, "msPerQuery")
			b.ReportMetric(last.PruningPower*100, "pruning%")
		})
	}
	_ = rows
}

// BenchmarkFig10Q1 regenerates Fig. 10 Q1 (scaling with cardinality).
func BenchmarkFig10Q1(b *testing.B) {
	for _, card := range []int{25, 50, 100} {
		runPerfBench(b, "Q1", card, 0.05, 1)
	}
}

// BenchmarkFig10Q2 regenerates Fig. 10 Q2 (scaling with query length).
func BenchmarkFig10Q2(b *testing.B) {
	for _, qlen := range []float64{0.01, 0.25, 1.0} {
		runPerfBench(b, "Q2", 50, qlen, 1)
	}
}

// BenchmarkFig10Q3 regenerates Fig. 10 Q3 (scaling with k).
func BenchmarkFig10Q3(b *testing.B) {
	for _, k := range []int{1, 5, 10} {
		runPerfBench(b, "Q3", 50, 0.05, k)
	}
}

// benchDB builds a facade DB reused by the ablation benches.
func benchDB(b *testing.B, kind IndexKind) (*DB, Trajectory) {
	b.Helper()
	data := experiments.SyntheticDataset(50, benchSamples, 1)
	db, err := NewDB(kind, data.Trajs)
	if err != nil {
		b.Fatal(err)
	}
	src := db.Get(1)
	q, _ := src.Slice(0.4, 0.6)
	qq := q.Clone()
	qq.ID = 0
	return db, qq
}

// BenchmarkAblationHeuristics quantifies what each pruning heuristic buys
// (DESIGN.md §4.2): the same query with heuristics individually disabled.
func BenchmarkAblationHeuristics(b *testing.B) {
	db, q := benchDB(b, RTree3D)
	cases := []struct {
		name string
		opt  Options
	}{
		{"full", Options{ExactRefine: true}},
		{"noH1", Options{ExactRefine: true, DisableHeuristic1: true}},
		{"noH2", Options{ExactRefine: true, DisableHeuristic2: true}},
		{"noH1H2", Options{ExactRefine: true, DisableHeuristic1: true, DisableHeuristic2: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var nodes int
			for i := 0; i < b.N; i++ {
				_, st, err := db.KMostSimilarOpts(&q, q.StartTime(), q.EndTime(), 1, c.opt)
				if err != nil {
					b.Fatal(err)
				}
				nodes = st.NodesAccessed
			}
			b.ReportMetric(float64(nodes), "nodesAccessed")
		})
	}
}

// BenchmarkAblationRefine measures the trapezoid refinement knob
// (DESIGN.md §4.1): Lemma 1 as published (refine=1) vs subdivided
// intervals vs relying on exact refinement only.
func BenchmarkAblationRefine(b *testing.B) {
	db, q := benchDB(b, RTree3D)
	for _, refine := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("refine=%d", refine), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := db.KMostSimilarOpts(&q, q.StartTime(), q.EndTime(), 1,
					Options{ExactRefine: true, Refine: refine})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSpeedMetrics compares speed-dependent pruning
// (OPTDISSIM/PESDISSIM with Vmax) against the speed-independent
// MINDISSIMINC-only configuration (DESIGN.md §4.3), on the raw search API.
func BenchmarkAblationSpeedMetrics(b *testing.B) {
	data := experiments.SyntheticDataset(50, benchSamples, 1)
	built, err := experiments.BuildIndex(experiments.RTree3D, data)
	if err != nil {
		b.Fatal(err)
	}
	tree, _ := built.View()
	src := &data.Trajs[0]
	q, _ := src.Slice(0.4, 0.6)
	qq := q.Clone()
	qq.ID = 0
	vmax := data.MaxSpeed() + qq.MaxSpeed()
	for _, c := range []struct {
		name string
		vmax float64
	}{{"speedDependent", vmax}, {"speedIndependent", 0}} {
		b.Run(c.name, func(b *testing.B) {
			var nodes int
			for i := 0; i < b.N; i++ {
				_, st, err := mst.Search(tree, &qq, qq.StartTime(), qq.EndTime(),
					mst.Options{K: 1, Vmax: c.vmax})
				if err != nil {
					b.Fatal(err)
				}
				nodes = st.NodesAccessed
			}
			b.ReportMetric(float64(nodes), "nodesAccessed")
		})
	}
}

// BenchmarkLinearScanVsIndexed contrasts the indexed search with the
// brute-force scan the index is supposed to beat.
func BenchmarkLinearScanVsIndexed(b *testing.B) {
	data := experiments.SyntheticDataset(50, benchSamples, 1)
	db, err := NewDB(RTree3D, data.Trajs)
	if err != nil {
		b.Fatal(err)
	}
	src := db.Get(1)
	sl, _ := src.Slice(0.4, 0.6)
	q := sl.Clone()
	q.ID = 0
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := db.KMostSimilar(&q, q.StartTime(), q.EndTime(), 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scanMST(db, &q)
		}
	})
}

// scanMST is the brute-force comparison: exact DISSIM against every
// stored trajectory.
func scanMST(db *DB, q *Trajectory) (ID, float64) {
	bestID, best := ID(0), -1.0
	for id := 1; id <= db.Len(); id++ {
		tr := db.Get(ID(id))
		if tr == nil {
			continue
		}
		if d, ok := Dissimilarity(q, tr, q.StartTime(), q.EndTime()); ok {
			if best < 0 || d < best {
				best, bestID = d, ID(id)
			}
		}
	}
	return bestID, best
}

// BenchmarkAblationBulkVsDynamic compares the two 3D R-tree construction
// paths: Guttman dynamic insertion (what a live MOD does, and what the
// experiments use) versus STR bulk loading (what a warehouse rebuild would
// do), reporting the node-count difference that drives query I/O.
func BenchmarkAblationBulkVsDynamic(b *testing.B) {
	data := experiments.SyntheticDataset(50, benchSamples, 1)
	var entries []index.LeafEntry
	for i := range data.Trajs {
		tr := &data.Trajs[i]
		for s := 0; s < tr.NumSegments(); s++ {
			entries = append(entries, index.LeafEntry{TrajID: tr.ID, SeqNo: uint32(s), Seg: tr.Segment(s)})
		}
	}
	b.Run("dynamic", func(b *testing.B) {
		var nodes int
		for i := 0; i < b.N; i++ {
			f := storage.NewFile(storage.DefaultPageSize)
			t := rtree.New(f)
			for _, e := range entries {
				if err := t.Insert(e); err != nil {
					b.Fatal(err)
				}
			}
			nodes = t.NumNodes()
		}
		b.ReportMetric(float64(nodes), "nodes")
	})
	b.Run("bulkSTR", func(b *testing.B) {
		var nodes int
		for i := 0; i < b.N; i++ {
			cp := make([]index.LeafEntry, len(entries))
			copy(cp, entries)
			t, err := rtree.BulkLoad(storage.NewFile(storage.DefaultPageSize), cp)
			if err != nil {
				b.Fatal(err)
			}
			nodes = t.NumNodes()
		}
		b.ReportMetric(float64(nodes), "nodes")
	})
}

// BenchmarkDiskBackedTree measures the same search against a tree whose
// pages live in an os.File rather than memory — the realistic I/O path the
// storage substrate exists for.
func BenchmarkDiskBackedTree(b *testing.B) {
	data := experiments.SyntheticDataset(30, benchSamples, 1)
	disk, err := storage.CreateDiskFile(b.TempDir()+"/pages.db", storage.DefaultPageSize)
	if err != nil {
		b.Fatal(err)
	}
	defer disk.Close()
	tree := rtree.New(disk)
	for i := range data.Trajs {
		tr := &data.Trajs[i]
		for s := 0; s < tr.NumSegments(); s++ {
			e := index.LeafEntry{TrajID: tr.ID, SeqNo: uint32(s), Seg: tr.Segment(s)}
			if err := tree.Insert(e); err != nil {
				b.Fatal(err)
			}
		}
	}
	src := &data.Trajs[0]
	sl, _ := src.Slice(0.4, 0.6)
	q := sl.Clone()
	q.ID = 0
	opts := mst.Options{K: 1, Vmax: data.MaxSpeed() + q.MaxSpeed()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mst.Search(tree, &q, q.StartTime(), q.EndTime(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentQueries measures query throughput with parallel
// clients, each holding its own buffered view (RunParallel scales workers
// with GOMAXPROCS).
func BenchmarkConcurrentQueries(b *testing.B) {
	data := experiments.SyntheticDataset(50, benchSamples, 1)
	db, err := NewDB(RTree3D, data.Trajs)
	if err != nil {
		b.Fatal(err)
	}
	src := db.Get(1)
	sl, _ := src.Slice(0.4, 0.6)
	q := sl.Clone()
	q.ID = 0
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := db.KMostSimilar(&q, q.StartTime(), q.EndTime(), 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKMostSimilarBatch measures the batch executor's throughput on a
// Fig. 10 Q1-shaped workload (5% windows, k = 1) at different worker
// counts — the serving-path number the striped pool and batch engine
// exist for. Note this container may be scheduled on a single CPU; on one
// core the parallel legs measure coordination overhead rather than
// speedup, so read the ratio between legs on multi-core hardware.
func BenchmarkKMostSimilarBatch(b *testing.B) {
	data := experiments.SyntheticDataset(50, benchSamples, 1)
	db, err := NewDB(RTree3D, data.Trajs)
	if err != nil {
		b.Fatal(err)
	}
	db.EnableWarmBuffer()
	rng := rand.New(rand.NewSource(7))
	const nq = 32
	queries := make([]BatchQuery, nq)
	held := make([]Trajectory, nq)
	for i := range queries {
		src := &data.Trajs[rng.Intn(len(data.Trajs))]
		t1 := rng.Float64() * 0.9
		t2 := t1 + 0.05
		sl, ok := src.Slice(t1, t2)
		if !ok {
			b.Fatalf("query window [%g, %g] outside dataset span", t1, t2)
		}
		held[i] = sl.Clone()
		held[i].ID = 0
		queries[i] = BatchQuery{Q: &held[i], T1: t1, T2: t2, K: 1}
	}
	// One untimed pass warms the shared buffer so every leg measures the
	// same steady state.
	for _, br := range db.KMostSimilarBatch(context.Background(), queries,
		Options{ExactRefine: true, Refine: 1, Parallelism: 1}) {
		if br.Err != nil {
			b.Fatal(br.Err)
		}
	}
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			opts := Options{ExactRefine: true, Refine: 1, Parallelism: par}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				for _, br := range db.KMostSimilarBatch(context.Background(), queries, opts) {
					if br.Err != nil {
						b.Fatal(br.Err)
					}
				}
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)*nq/elapsed, "queries/s")
			}
		})
	}
}
