package mstsearch

import (
	"errors"
	"fmt"
	"strings"

	"mstsearch/internal/index"
	"mstsearch/internal/ntree"
	"mstsearch/internal/rtree"
	"mstsearch/internal/storage"
	"mstsearch/internal/strtree"
	"mstsearch/internal/tbtree"
)

// IndexKind selects the index structure backing a DB.
type IndexKind int

// The index structures a DB can run on. The first three are the
// R-tree-family structures of the paper's §4.5 — all answer the same
// queries: the 3D R-tree discriminates purely spatially (fastest short
// queries), the TB-tree bundles each trajectory's segments into dedicated
// leaves (smallest index, best I/O on long queries), and the STR-tree sits
// between the two. The N-tree is a metric-space index over whole
// trajectories (pivots and covering radii instead of segment MBBs): it
// answers the same k-MST queries and additionally serves exact kNN under
// the non-DISSIM metrics (DTW/LCSS/EDR), which MBB geometry cannot bound.
const (
	RTree3D IndexKind = iota
	TBTree
	STRTree
	NTree
)

// kindSpec is one registry row: the canonical display name (String) and
// the lowercase spellings ParseIndexKind accepts for it.
type kindSpec struct {
	kind    IndexKind
	name    string
	aliases []string
}

// kindRegistry is the single source of truth for kind naming. Every
// binary and the persistence layer resolve kinds through it, so adding a
// kind here is the whole registration step.
var kindRegistry = []kindSpec{
	{RTree3D, "3D R-tree", []string{"rtree", "r", "3d", "3d r-tree"}},
	{TBTree, "TB-tree", []string{"tb", "tbtree", "tb-tree"}},
	{STRTree, "STR-tree", []string{"str", "strtree", "str-tree"}},
	{NTree, "N-tree", []string{"ntree", "n", "n-tree", "metric"}},
}

// String names the structure.
func (k IndexKind) String() string {
	for _, s := range kindRegistry {
		if s.kind == k {
			return s.name
		}
	}
	return fmt.Sprintf("IndexKind(%d)", int(k))
}

// Valid reports whether k is a registered index kind.
func (k IndexKind) Valid() bool {
	for _, s := range kindRegistry {
		if s.kind == k {
			return true
		}
	}
	return false
}

// Metric reports whether the kind is a metric-space index: one that can
// serve exact kNN under every Request.Metric, not only DISSIM.
func (k IndexKind) Metric() bool { return k == NTree }

// ErrUnknownIndexKind reports an index kind name or value no registry row
// matches — the one typed error every kind-resolving surface (CLI flags,
// snapshot headers, WAL kind records) returns.
var ErrUnknownIndexKind = errors.New("mstsearch: unknown index kind")

// ParseIndexKind resolves a kind name (case-insensitively) to its
// IndexKind — the inverse of IndexKind.String, which it also accepts.
func ParseIndexKind(s string) (IndexKind, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	for _, spec := range kindRegistry {
		if t == strings.ToLower(spec.name) {
			return spec.kind, nil
		}
		for _, a := range spec.aliases {
			if t == a {
				return spec.kind, nil
			}
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownIndexKind, s)
}

// IndexKinds returns every registered kind in declaration order — the
// list CLI fallback loops and test matrices iterate.
func IndexKinds() []IndexKind {
	out := make([]IndexKind, len(kindRegistry))
	for i, s := range kindRegistry {
		out[i] = s.kind
	}
	return out
}

// treeMeta is the root metadata every engine exposes in a common shape,
// the (root, height, nodes) triple the snapshot header stores.
type treeMeta struct {
	Root   storage.PageID
	Height int
	Nodes  int
}

// errRebuildRequired is an engine's way of telling the DB that it cannot
// apply an incremental append and the index must be rebuilt from the
// trajectory store instead (the N-tree: a new tail segment changes the
// trajectory's distances to every pivot, which no local update can fix).
var errRebuildRequired = errors.New("mstsearch: index append requires rebuild")

// indexEngine adapts one concrete index structure to the DB's mutation
// and read paths. Engines are not safe for concurrent use on their own;
// the DB serializes calls through its lock.
type indexEngine interface {
	// meta returns the root metadata for the snapshot header.
	meta() treeMeta
	// view opens a read view of the index over the given pager. Search
	// code type-switches the result to the capability it needs
	// (index.Tree for MBB search, index.MetricTree for metric search).
	view(p storage.Pager) index.Index
	// insertTrajectory indexes one whole trajectory (the Add path). The
	// trajectory is already in the DB's store when this is called.
	insertTrajectory(tr *Trajectory) error
	// appendSegment indexes one new tail segment (the AppendSample
	// path); tr already includes the new sample. Engines that cannot
	// append incrementally return errRebuildRequired, and read-only
	// loaded engines return their structure's ErrReadOnly.
	appendSegment(e index.LeafEntry, tr *Trajectory) error
}

// newEngine builds a fresh, writable engine of the given kind over the
// page file. The DB's trajectory store backs metric engines' geometry
// lookups; callers must hold db.mu (write side) while mutating through
// the engine.
func (db *DB) newEngine(kind IndexKind, file storage.Pager) indexEngine {
	switch kind {
	case TBTree:
		return &tbEngine{t: tbtree.New(file)}
	case STRTree:
		return &strEngine{t: strtree.New(file)}
	case NTree:
		return &ntreeEngine{t: ntree.New(file, db.lookupLocked)}
	default:
		return &rtreeEngine{t: rtree.New(file)}
	}
}

// lookupLocked resolves a trajectory ID against the store for the metric
// engine. It runs inside engine calls, which the DB only makes under
// db.mu, so the unlocked get is safe.
func (db *DB) lookupLocked(id ID) *Trajectory { return db.get(id) }

// openEngine rebinds a snapshot's engine over its restored page file. A
// reopened 3D R-tree stays writable; the other kinds reopen read-only
// (their build-time state is not in the snapshot), rejecting mutations
// with their structure's ErrReadOnly until a Recover rebuilds them.
func (db *DB) openEngine(kind IndexKind, file storage.Pager, m treeMeta) indexEngine {
	switch kind {
	case TBTree:
		return &tbEngine{t: tbtree.Open(file, tbtree.Meta{Root: m.Root, Height: m.Height, Nodes: m.Nodes})}
	case STRTree:
		return &strEngine{t: strtree.Open(file, strtree.Meta{Root: m.Root, Height: m.Height, Nodes: m.Nodes})}
	case NTree:
		return &ntreeEngine{t: ntree.Open(file, ntree.Meta{Root: m.Root, Height: m.Height, Nodes: m.Nodes}, db.lookupLocked)}
	default:
		return &rtreeEngine{t: rtree.Open(file, rtree.Meta{Root: m.Root, Height: m.Height, Nodes: m.Nodes})}
	}
}

type rtreeEngine struct{ t *rtree.Tree }

func (e *rtreeEngine) meta() treeMeta {
	m := e.t.Meta()
	return treeMeta{Root: m.Root, Height: m.Height, Nodes: m.Nodes}
}

func (e *rtreeEngine) view(p storage.Pager) index.Index { return rtree.Open(p, e.t.Meta()) }

func (e *rtreeEngine) insertTrajectory(tr *Trajectory) error {
	for s := 0; s < tr.NumSegments(); s++ {
		le := index.LeafEntry{TrajID: tr.ID, SeqNo: uint32(s), Seg: tr.Segment(s)}
		if err := e.t.Insert(le); err != nil {
			return err
		}
	}
	return nil
}

func (e *rtreeEngine) appendSegment(le index.LeafEntry, _ *Trajectory) error {
	return e.t.Insert(le)
}

type tbEngine struct{ t *tbtree.Tree }

func (e *tbEngine) meta() treeMeta {
	m := e.t.Meta()
	return treeMeta{Root: m.Root, Height: m.Height, Nodes: m.Nodes}
}

func (e *tbEngine) view(p storage.Pager) index.Index { return tbtree.Open(p, e.t.Meta()) }

func (e *tbEngine) insertTrajectory(tr *Trajectory) error { return e.t.InsertTrajectory(tr) }

func (e *tbEngine) appendSegment(le index.LeafEntry, _ *Trajectory) error {
	return e.t.Insert(le)
}

type strEngine struct{ t *strtree.Tree }

func (e *strEngine) meta() treeMeta {
	m := e.t.Meta()
	return treeMeta{Root: m.Root, Height: m.Height, Nodes: m.Nodes}
}

func (e *strEngine) view(p storage.Pager) index.Index { return strtree.Open(p, e.t.Meta()) }

func (e *strEngine) insertTrajectory(tr *Trajectory) error { return e.t.InsertTrajectory(tr) }

func (e *strEngine) appendSegment(le index.LeafEntry, _ *Trajectory) error {
	return e.t.Insert(le)
}

type ntreeEngine struct{ t *ntree.Tree }

func (e *ntreeEngine) meta() treeMeta {
	m := e.t.Meta()
	return treeMeta{Root: m.Root, Height: m.Height, Nodes: m.Nodes}
}

func (e *ntreeEngine) view(p storage.Pager) index.Index {
	return ntree.Open(p, e.t.Meta(), e.t.Lookup())
}

func (e *ntreeEngine) insertTrajectory(tr *Trajectory) error { return e.t.InsertTrajectory(tr) }

func (e *ntreeEngine) appendSegment(_ index.LeafEntry, _ *Trajectory) error {
	// A loaded tree behaves like the loaded TB/STR trees: appends are
	// rejected until a Recover rebuilds it writable.
	if e.t.ReadOnly() {
		return ntree.ErrReadOnly
	}
	return errRebuildRequired
}
